package bucketing

import (
	"math"
	"math/rand"
	"testing"

	"optrule/internal/relation"
)

// nanRelation mixes valid values with NaNs (every 5th driver value).
func nanRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		if i%5 == 0 {
			x = math.NaN()
		}
		rel.MustAppend([]float64{x}, []bool{i%2 == 0})
	}
	return rel
}

func TestCountSkipsNaNDrivers(t *testing.T) {
	n := 1000
	rel := nanRelation(t, n)
	bounds, err := NewBoundaries([]float64{25, 50, 75})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Count(rel, 0, bounds, Options{Bools: []BoolCond{{Attr: 1, Want: true}}, TrackExtremes: true})
	if err != nil {
		t.Fatal(err)
	}
	wantNaN := n / 5
	if c.NaNs != wantNaN {
		t.Errorf("NaNs = %d, want %d", c.NaNs, wantNaN)
	}
	if c.N != n-wantNaN {
		t.Errorf("N = %d, want %d", c.N, n-wantNaN)
	}
	if c.Total != n {
		t.Errorf("Total = %d, want %d", c.Total, n)
	}
	total := 0
	for _, u := range c.U {
		total += u
	}
	if total != c.N {
		t.Errorf("bucket sizes sum to %d, want N=%d", total, c.N)
	}
	for i := range c.MinVal {
		if math.IsNaN(c.MinVal[i]) || math.IsNaN(c.MaxVal[i]) {
			t.Errorf("NaN leaked into bucket %d extremes", i)
		}
	}
	// NaNs survive merge (parallel counting).
	par, err := ParallelCount(rel, 0, bounds, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.NaNs != wantNaN {
		t.Errorf("parallel NaNs = %d, want %d", par.NaNs, wantNaN)
	}
	// NaNs survive Compact.
	compact, _ := c.Compact()
	if compact.NaNs != c.NaNs {
		t.Errorf("compact lost NaN count")
	}
}

func TestSampledBoundariesWithNaNs(t *testing.T) {
	rel := nanRelation(t, 5000)
	rng := rand.New(rand.NewSource(7))
	bounds, err := SampledBoundaries(rel, 0, 20, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range bounds.Cuts() {
		if math.IsNaN(cut) {
			t.Fatalf("NaN cut point: %v", bounds.Cuts())
		}
	}
}

func TestSampledBoundariesAllNaN(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for i := 0; i < 100; i++ {
		rel.MustAppend([]float64{math.NaN()}, nil)
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := SampledBoundaries(rel, 0, 10, 40, rng); err == nil {
		t.Errorf("all-NaN column accepted")
	}
}
