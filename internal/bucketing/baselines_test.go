package bucketing

import (
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/stats"
)

func TestThreePipelinesAgreeOnTotals(t *testing.T) {
	ps, err := datagen.NewPerfShape(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, m := 20000, 50
	rel := datagen.MustMaterialize(ps, n, 11)

	alg31, err := Algorithm31All(rel, m, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveSortAll(rel, m)
	if err != nil {
		t.Fatal(err)
	}
	vsplit, err := VerticalSplitSortAll(rel, m)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string][]AttributeBuckets{"alg31": alg31, "naive": naive, "vsplit": vsplit} {
		if len(res) != 3 {
			t.Fatalf("%s: %d attribute results, want 3", name, len(res))
		}
		for _, ab := range res {
			if ab.Counts.M != m {
				t.Errorf("%s attr %d: M=%d, want %d", name, ab.Attr, ab.Counts.M, m)
			}
			total := 0
			for _, u := range ab.Counts.U {
				total += u
			}
			if total != n {
				t.Errorf("%s attr %d: bucket sizes sum to %d, want %d", name, ab.Attr, total, n)
			}
			// V counts are bounded by U counts bucketwise.
			for k := range ab.Counts.V {
				vTotal := 0
				for i, v := range ab.Counts.V[k] {
					if v > ab.Counts.U[i] {
						t.Errorf("%s attr %d: v[%d][%d]=%d > u=%d", name, ab.Attr, k, i, v, ab.Counts.U[i])
					}
					vTotal += v
				}
				if vTotal == 0 || vTotal == n {
					t.Errorf("%s attr %d: degenerate boolean attribute %d (total %d)", name, ab.Attr, k, vTotal)
				}
			}
		}
	}

	// The exact methods must agree with each other bucket-for-bucket
	// (both cut perfectly equi-depth boundaries from the sorted column).
	for a := range naive {
		for i := range naive[a].Counts.U {
			if naive[a].Counts.U[i] != vsplit[a].Counts.U[i] {
				t.Fatalf("attr %d bucket %d: naive u=%d, vsplit u=%d",
					a, i, naive[a].Counts.U[i], vsplit[a].Counts.U[i])
			}
			for k := range naive[a].Counts.V {
				if naive[a].Counts.V[k][i] != vsplit[a].Counts.V[k][i] {
					t.Fatalf("attr %d bucket %d bool %d: naive v=%d, vsplit v=%d",
						a, i, k, naive[a].Counts.V[k][i], vsplit[a].Counts.V[k][i])
				}
			}
		}
	}
}

func TestExactPipelinesPerfectEquiDepth(t *testing.T) {
	ps, _ := datagen.NewPerfShape(1, 1, nil)
	n, m := 10000, 25
	rel := datagen.MustMaterialize(ps, n, 13)
	naive, err := NaiveSortAll(rel, m)
	if err != nil {
		t.Fatal(err)
	}
	// With continuous uniform data (no ties) exact bucketing should be
	// perfectly equi-depth.
	if dev := stats.DepthDeviation(naive[0].Counts.U); dev > 1e-9 {
		t.Errorf("naive sort depth deviation %g, want 0", dev)
	}
}

func TestAlgorithm31AlmostEquiDepthVsExact(t *testing.T) {
	ps, _ := datagen.NewPerfShape(1, 1, nil)
	n, m := 100000, 100
	rel := datagen.MustMaterialize(ps, n, 17)
	alg31, err := Algorithm31All(rel, m, 40, 23)
	if err != nil {
		t.Fatal(err)
	}
	dev := stats.DepthDeviation(alg31[0].Counts.U)
	// Sampled boundaries are only *almost* equi-depth; Section 3.2's
	// analysis puts large deviations at well under 1% probability per
	// bucket at S/M=40. A >70% deviation would mean the pipeline is broken.
	if dev > 0.7 {
		t.Errorf("algorithm 3.1 depth deviation %g too large", dev)
	}
	if dev == 0 {
		t.Logf("note: sampled bucketing came out exactly equi-depth (possible but unusual)")
	}
}

func TestBaselinesRejectEmptyRelation(t *testing.T) {
	ps, _ := datagen.NewPerfShape(1, 1, nil)
	empty := datagen.MustMaterialize(ps, 0, 1)
	if _, err := NaiveSortAll(empty, 5); err == nil {
		t.Errorf("naive sort accepted empty relation")
	}
	if _, err := VerticalSplitSortAll(empty, 5); err == nil {
		t.Errorf("vertical split sort accepted empty relation")
	}
}
