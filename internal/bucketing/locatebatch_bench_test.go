package bucketing

import (
	"math/rand"
	"testing"

	"optrule/internal/stats"
)

// BenchmarkLocateBatch measures the fused 2-D counting scan's bucket
// kernel in isolation: 1Mi lookups against a 64-bucket equi-depth
// table, the per-attribute cost of one batch of grid counting.
func BenchmarkLocateBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 2560)
	for i := range sample {
		sample[i] = rng.NormFloat64() * 100
	}
	stats.SortFloat64s(sample)
	bd, err := FromSortedSample(sample, 64)
	if err != nil {
		b.Fatal(err)
	}
	col := make([]float64, 1<<20)
	for i := range col {
		col[i] = rng.NormFloat64() * 100
	}
	out := make([]int32, len(col))
	b.SetBytes(int64(len(col)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.LocateBatch(col, out)
	}
}
