package bucketing

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// alignedMem wraps a MemoryRelation with a declared scan alignment, to
// exercise segmentBounds without a disk file.
type alignedMem struct {
	*relation.MemoryRelation
	align int
}

func (a alignedMem) ScanAlignment() int { return a.align }

func TestSegmentBoundsAlignment(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for i := 0; i < 10; i++ {
		rel.MustAppend([]float64{float64(i)}, nil)
	}
	// Unaligned relation: plain proportional split.
	if got := segmentBounds(rel, 10, 4); !reflect.DeepEqual(got, []int{0, 2, 5, 7, 10}) {
		t.Errorf("unaligned bounds = %v", got)
	}
	// Aligned relation with enough rows for every worker: interior cuts
	// snap to multiples of the group and no segment is empty.
	got := segmentBounds(alignedMem{rel, 4}, 32, 3)
	if got[0] != 0 || got[len(got)-1] != 32 {
		t.Fatalf("bounds %v must span [0, 32]", got)
	}
	for p := 1; p < len(got)-1; p++ {
		if got[p]%4 != 0 {
			t.Errorf("interior cut %d not aligned to 4 in %v", got[p], got)
		}
	}
	for p := 1; p < len(got); p++ {
		if got[p] <= got[p-1] {
			t.Errorf("bounds %v collapsed a segment despite n >= pes*align", got)
		}
	}
	// Relation smaller than pes*align: alignment must be abandoned
	// rather than collapsing parallelism — the plain proportional split
	// keeps every worker busy.
	if got := segmentBounds(alignedMem{rel, 8}, 10, 5); !reflect.DeepEqual(got, []int{0, 2, 4, 6, 8, 10}) {
		t.Errorf("small-relation bounds = %v, want plain proportional split", got)
	}
}

// TestSegmentBoundsShardSnapping pins segment planning across shard
// boundaries: over a sharded relation the planner's interior cuts land
// on shard or per-shard block-group boundaries (SnapSegment fixed
// points), so ParallelMultiCount workers never split a shard's group.
func TestSegmentBoundsShardSnapping(t *testing.T) {
	schema := relation.Schema{{Name: "X", Kind: relation.Numeric}}
	path := filepath.Join(t.TempDir(), "seg.oprs")
	sw, err := relation.NewShardedWriter(path, schema, relation.ShardedWriterOptions{Shards: 3, TotalRows: 9000, GroupRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9000; i++ {
		if err := sw.Append([]float64{float64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	for _, pes := range []int{2, 4, 8} {
		cuts := segmentBounds(sr, sr.NumTuples(), pes)
		if cuts[0] != 0 || cuts[pes] != 9000 {
			t.Fatalf("pes=%d: cuts %v must span [0, 9000]", pes, cuts)
		}
		for p := 1; p < pes; p++ {
			if cuts[p] < cuts[p-1] {
				t.Fatalf("pes=%d: cuts %v not monotone", pes, cuts)
			}
			if snapped := sr.SnapSegment(cuts[p]); snapped != cuts[p] {
				t.Errorf("pes=%d: interior cut %d splits a shard block group (snaps to %d)", pes, cuts[p], snapped)
			}
		}
	}
}

// TestParallelMultiCountSharded pins that the shard-snapped parallel
// scan over a SHARDED relation produces counts identical to the
// sequential fused scan over the same rows — the invariant that lets
// ParallelMultiCount (and therefore MineAll) run unmodified on the
// sharded backend.
func TestParallelMultiCountSharded(t *testing.T) {
	schema := relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	}
	path := filepath.Join(t.TempDir(), "par.oprs")
	sw, err := relation.NewShardedWriter(path, schema, relation.ShardedWriterOptions{Shards: 4, TotalRows: 12345, GroupRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12345; i++ {
		if err := sw.Append([]float64{rng.NormFloat64(), rng.Float64() * 100}, []bool{rng.Intn(3) == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rel, err := relation.OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Close()
	drivers := []int{0, 1}
	rngs := []*rand.Rand{rand.New(rand.NewSource(5)), rand.New(rand.NewSource(6))}
	bounds, err := MultiSampledBoundaries(rel, drivers, 50, 40, 0, rngs)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Bools: []BoolCond{{Attr: 2, Want: true}}, TrackExtremes: true}
	seq, err := MultiCount(rel, drivers, bounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{2, 5, 16} {
		par, err := ParallelMultiCount(rel, drivers, bounds, opts, pes)
		if err != nil {
			t.Fatal(err)
		}
		for d := range seq {
			if par[d].N != seq[d].N || par[d].Total != seq[d].Total {
				t.Fatalf("pes=%d driver %d: N/Total %d/%d, want %d/%d", pes, d, par[d].N, par[d].Total, seq[d].N, seq[d].Total)
			}
			if !reflect.DeepEqual(par[d].U, seq[d].U) || !reflect.DeepEqual(par[d].V, seq[d].V) {
				t.Fatalf("pes=%d driver %d: per-bucket counts differ from sequential scan", pes, d)
			}
			if !reflect.DeepEqual(par[d].MinVal, seq[d].MinVal) || !reflect.DeepEqual(par[d].MaxVal, seq[d].MaxVal) {
				t.Fatalf("pes=%d driver %d: extremes differ from sequential scan", pes, d)
			}
		}
	}
}

// TestParallelMultiCountV2Aligned pins that the group-aligned parallel
// scan over a v2 disk relation produces counts identical to the
// sequential fused scan.
func TestParallelMultiCountV2Aligned(t *testing.T) {
	schema := relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	}
	path := filepath.Join(t.TempDir(), "par_v2.opr")
	dw, err := relation.NewDiskWriterV2(path, schema, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 12345 // 12 full groups + a 345-row tail
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{rng.NormFloat64(), rng.Float64() * 100}, []bool{rng.Intn(3) == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	rel, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	drivers := []int{0, 1}
	rngs := []*rand.Rand{rand.New(rand.NewSource(5)), rand.New(rand.NewSource(6))}
	bounds, err := MultiSampledBoundaries(rel, drivers, 50, 40, 0, rngs)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Bools: []BoolCond{{Attr: 2, Want: true}}, TrackExtremes: true}
	seq, err := MultiCount(rel, drivers, bounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{2, 3, 7, 16} {
		par, err := ParallelMultiCount(rel, drivers, bounds, opts, pes)
		if err != nil {
			t.Fatal(err)
		}
		for d := range seq {
			if par[d].N != seq[d].N || par[d].Total != seq[d].Total {
				t.Fatalf("pes=%d driver %d: N/Total %d/%d, want %d/%d", pes, d, par[d].N, par[d].Total, seq[d].N, seq[d].Total)
			}
			if !reflect.DeepEqual(par[d].U, seq[d].U) || !reflect.DeepEqual(par[d].V, seq[d].V) {
				t.Fatalf("pes=%d driver %d: per-bucket counts differ from sequential scan", pes, d)
			}
			if !reflect.DeepEqual(par[d].MinVal, seq[d].MinVal) || !reflect.DeepEqual(par[d].MaxVal, seq[d].MaxVal) {
				t.Fatalf("pes=%d driver %d: extremes differ from sequential scan", pes, d)
			}
		}
	}
}
