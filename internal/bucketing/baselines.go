package bucketing

import (
	"fmt"
	"math/rand"
	"sort"

	"optrule/internal/relation"
)

// This file implements the three bucketing pipelines compared in the
// paper's Figure 9 experiment. The test case is: for EACH numeric
// attribute, divide the data into M buckets and count the number of
// tuples in every bucket for each Boolean attribute.
//
//   - Algorithm31All: the paper's randomized method (Algorithm 3.1) —
//     sample + sort the sample per attribute, then one counting scan
//     per attribute. O(max(S log S, N log M)) per attribute.
//   - NaiveSortAll: materialize and sort the FULL TUPLES once per
//     numeric attribute (the paper's "Naive Sort" with Quick Sort),
//     then cut into exactly equi-depth buckets and count.
//   - VerticalSplitSortAll: for each numeric attribute, extract a slim
//     (tupleID, value) temporary table, sort that, then cut and count
//     (the paper's "Vertical Split Sort").
//
// All three produce per-attribute Counts with one V row per Boolean
// attribute, so their outputs are directly comparable.

// AttributeBuckets is the result of bucketing one numeric attribute.
type AttributeBuckets struct {
	Attr   int // schema position of the driver attribute
	Bounds Boundaries
	Counts *Counts
}

// allBoolConds returns one (B = yes) objective per Boolean attribute.
func allBoolConds(s relation.Schema) []BoolCond {
	var out []BoolCond
	for _, i := range s.BooleanIndices() {
		out = append(out, BoolCond{Attr: i, Want: true})
	}
	return out
}

// Algorithm31All runs the full randomized bucketing pipeline for every
// numeric attribute: sample factor sampleFactor (paper: 40), m buckets.
func Algorithm31All(rel relation.Relation, m, sampleFactor int, seed int64) ([]AttributeBuckets, error) {
	s := rel.Schema()
	opts := Options{Bools: allBoolConds(s)}
	rng := rand.New(rand.NewSource(seed))
	var out []AttributeBuckets
	for _, attr := range s.NumericIndices() {
		bounds, err := SampledBoundaries(rel, attr, m, sampleFactor, rng)
		if err != nil {
			return nil, fmt.Errorf("bucketing: attribute %s: %w", s[attr].Name, err)
		}
		counts, err := Count(rel, attr, bounds, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, AttributeBuckets{Attr: attr, Bounds: bounds, Counts: counts})
	}
	return out, nil
}

// tupleRow is a full materialized tuple for the Naive Sort baseline.
// Sorting these moves every attribute's payload on each swap, which is
// what makes the naive method expensive.
type tupleRow struct {
	nums  []float64
	bools []bool
}

// NaiveSortAll materializes all tuples and, for each numeric attribute,
// sorts the full tuple table by that attribute before cutting it into m
// exactly equi-depth buckets and counting the Boolean attributes.
func NaiveSortAll(rel relation.Relation, m int) ([]AttributeBuckets, error) {
	s := rel.Schema()
	numIdx := s.NumericIndices()
	boolIdx := s.BooleanIndices()
	n := rel.NumTuples()
	if n == 0 {
		return nil, fmt.Errorf("bucketing: empty relation")
	}
	rows := make([]tupleRow, 0, n)
	cols := relation.ColumnSet{Numeric: numIdx, Bool: boolIdx}
	err := rel.Scan(cols, func(b *relation.Batch) error {
		for r := 0; r < b.Len; r++ {
			row := tupleRow{nums: make([]float64, len(numIdx)), bools: make([]bool, len(boolIdx))}
			for k := range numIdx {
				row.nums[k] = b.Numeric[k][r]
			}
			for k := range boolIdx {
				row.bools[k] = b.Bool[k][r]
			}
			rows = append(rows, row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []AttributeBuckets
	for k, attr := range numIdx {
		k := k
		sort.Slice(rows, func(i, j int) bool { return rows[i].nums[k] < rows[j].nums[k] })
		ab, err := countsFromSortedRows(rows, k, attr, m, len(boolIdx))
		if err != nil {
			return nil, err
		}
		out = append(out, ab)
	}
	return out, nil
}

// countsFromSortedRows cuts rows (sorted by numeric position k) into m
// equi-depth buckets and tallies Boolean counts.
func countsFromSortedRows(rows []tupleRow, k, attr, m, numBools int) (AttributeBuckets, error) {
	n := len(rows)
	column := make([]float64, n)
	for i, r := range rows {
		column[i] = r.nums[k]
	}
	bounds, err := FromSortedSample(column, m)
	if err != nil {
		return AttributeBuckets{}, err
	}
	c := &Counts{M: m, N: n, Total: n, U: make([]int, m), V: make([][]int, numBools)}
	for b := range c.V {
		c.V[b] = make([]int, m)
	}
	for _, r := range rows {
		i := bounds.Locate(r.nums[k])
		c.U[i]++
		for b, val := range r.bools {
			if val {
				c.V[b][i]++
			}
		}
	}
	return AttributeBuckets{Attr: attr, Bounds: bounds, Counts: c}, nil
}

// vsEntry is one row of the Vertical Split Sort temporary table.
type vsEntry struct {
	tid int32
	val float64
}

// VerticalSplitSortAll builds, for each numeric attribute, a slim
// (tupleID, value) table, sorts it, cuts it into m equi-depth buckets,
// and then counts Boolean attributes through the tuple IDs.
func VerticalSplitSortAll(rel relation.Relation, m int) ([]AttributeBuckets, error) {
	s := rel.Schema()
	numIdx := s.NumericIndices()
	boolIdx := s.BooleanIndices()
	n := rel.NumTuples()
	if n == 0 {
		return nil, fmt.Errorf("bucketing: empty relation")
	}
	// Boolean columns are materialized once; the per-attribute temporary
	// tables reference tuples by ID.
	boolCols := make([][]bool, len(boolIdx))
	for k := range boolCols {
		boolCols[k] = make([]bool, 0, n)
	}
	err := rel.Scan(relation.ColumnSet{Bool: boolIdx}, func(b *relation.Batch) error {
		for k := range boolIdx {
			boolCols[k] = append(boolCols[k], b.Bool[k][:b.Len]...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []AttributeBuckets
	tmp := make([]vsEntry, n)
	for _, attr := range numIdx {
		tmp = tmp[:0]
		tid := int32(0)
		err := rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
			for _, v := range b.Numeric[0][:b.Len] {
				tmp = append(tmp, vsEntry{tid: tid, val: v})
				tid++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Slice(tmp, func(i, j int) bool { return tmp[i].val < tmp[j].val })
		column := make([]float64, n)
		for i, e := range tmp {
			column[i] = e.val
		}
		bounds, err := FromSortedSample(column, m)
		if err != nil {
			return nil, err
		}
		c := &Counts{M: m, N: n, Total: n, U: make([]int, m), V: make([][]int, len(boolIdx))}
		for b := range c.V {
			c.V[b] = make([]int, m)
		}
		for _, e := range tmp {
			i := bounds.Locate(e.val)
			c.U[i]++
			for b := range boolCols {
				if boolCols[b][e.tid] {
					c.V[b][i]++
				}
			}
		}
		out = append(out, AttributeBuckets{Attr: attr, Bounds: bounds, Counts: c})
	}
	return out, nil
}
