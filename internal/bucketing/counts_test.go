package bucketing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// fourBucketFixture builds a relation over X ∈ {5, 15, 25, 35} with a
// Boolean C and target T, plus boundaries {10, 20, 30} so each distinct
// X value is its own bucket.
func fourBucketFixture(t *testing.T) (*relation.MemoryRelation, Boundaries) {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "T", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
		{Name: "D", Kind: relation.Boolean},
	})
	// (X, T, C, D) rows: bucket0 has 2 rows 1 C-yes; bucket1 has 3 rows
	// 2 C-yes; bucket2 has 1 row 0 C-yes; bucket3 has 2 rows 2 C-yes.
	rows := []struct {
		x, tval float64
		c, d    bool
	}{
		{5, 1, true, true},
		{7, 2, false, true},
		{15, 10, true, false},
		{16, 20, true, true},
		{17, 30, false, false},
		{25, 100, false, true},
		{35, 1000, true, true},
		{36, 2000, true, false},
	}
	for _, r := range rows {
		rel.MustAppend([]float64{r.x, r.tval}, []bool{r.c, r.d})
	}
	b, err := NewBoundaries([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	return rel, b
}

func TestCountBasic(t *testing.T) {
	rel, b := fourBucketFixture(t)
	c, err := Count(rel, 0, b, Options{
		Bools:   []BoolCond{{Attr: 2, Want: true}},
		Targets: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 8 || c.Total != 8 {
		t.Errorf("N=%d Total=%d, want 8/8", c.N, c.Total)
	}
	if !reflect.DeepEqual(c.U, []int{2, 3, 1, 2}) {
		t.Errorf("U = %v", c.U)
	}
	if !reflect.DeepEqual(c.V[0], []int{1, 2, 0, 2}) {
		t.Errorf("V = %v", c.V[0])
	}
	if !reflect.DeepEqual(c.Sum[0], []float64{3, 60, 100, 3000}) {
		t.Errorf("Sum = %v", c.Sum[0])
	}
}

func TestCountWantNo(t *testing.T) {
	rel, b := fourBucketFixture(t)
	c, err := Count(rel, 0, b, Options{Bools: []BoolCond{{Attr: 2, Want: false}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.V[0], []int{1, 1, 1, 0}) {
		t.Errorf("V for C=no: %v", c.V[0])
	}
}

func TestCountWithFilter(t *testing.T) {
	rel, b := fourBucketFixture(t)
	// Filter D=yes keeps rows 0,1,3,5,6: buckets sizes 2,1,1,1.
	c, err := Count(rel, 0, b, Options{
		Bools:  []BoolCond{{Attr: 2, Want: true}},
		Filter: []BoolCond{{Attr: 3, Want: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 8 || c.N != 5 {
		t.Errorf("Total=%d N=%d, want 8/5", c.Total, c.N)
	}
	if !reflect.DeepEqual(c.U, []int{2, 1, 1, 1}) {
		t.Errorf("filtered U = %v", c.U)
	}
	if !reflect.DeepEqual(c.V[0], []int{1, 1, 0, 1}) {
		t.Errorf("filtered V = %v", c.V[0])
	}
}

func TestCountConjunctiveFilter(t *testing.T) {
	rel, b := fourBucketFixture(t)
	// C=yes AND D=yes keeps rows 0,3,6.
	c, err := Count(rel, 0, b, Options{
		Filter: []BoolCond{{Attr: 2, Want: true}, {Attr: 3, Want: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 {
		t.Errorf("N = %d, want 3", c.N)
	}
	if !reflect.DeepEqual(c.U, []int{1, 1, 0, 1}) {
		t.Errorf("U = %v", c.U)
	}
}

func TestCountTrackExtremes(t *testing.T) {
	rel, b := fourBucketFixture(t)
	c, err := Count(rel, 0, b, Options{TrackExtremes: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.MinVal[0] != 5 || c.MaxVal[0] != 7 {
		t.Errorf("bucket 0 extremes = [%g, %g], want [5,7]", c.MinVal[0], c.MaxVal[0])
	}
	if c.MinVal[1] != 15 || c.MaxVal[1] != 17 {
		t.Errorf("bucket 1 extremes = [%g, %g], want [15,17]", c.MinVal[1], c.MaxVal[1])
	}
	// Filter that empties a bucket leaves inf extremes there.
	c2, err := Count(rel, 0, b, Options{TrackExtremes: true, Filter: []BoolCond{{Attr: 2, Want: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c2.MinVal[2], 1) || !math.IsInf(c2.MaxVal[2], -1) {
		t.Errorf("empty bucket extremes should be ±Inf: [%g, %g]", c2.MinVal[2], c2.MaxVal[2])
	}
}

func TestCountValidation(t *testing.T) {
	rel, b := fourBucketFixture(t)
	cases := []struct {
		name   string
		driver int
		opts   Options
	}{
		{"driver is bool", 2, Options{}},
		{"driver out of range", 9, Options{}},
		{"objective is numeric", 0, Options{Bools: []BoolCond{{Attr: 1}}}},
		{"target is bool", 0, Options{Targets: []int{2}}},
		{"filter is numeric", 0, Options{Filter: []BoolCond{{Attr: 0}}}},
	}
	for _, tc := range cases {
		if _, err := Count(rel, tc.driver, b, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCompact(t *testing.T) {
	rel, b := fourBucketFixture(t)
	c, err := Count(rel, 0, b, Options{
		Bools:         []BoolCond{{Attr: 2, Want: true}},
		Targets:       []int{1},
		Filter:        []BoolCond{{Attr: 2, Want: true}}, // empties bucket 2
		TrackExtremes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	compact, mapping := c.Compact()
	if compact.M != 3 {
		t.Fatalf("compact M = %d, want 3", compact.M)
	}
	if !reflect.DeepEqual(mapping, []int{0, 1, 3}) {
		t.Errorf("mapping = %v, want [0 1 3]", mapping)
	}
	for _, u := range compact.U {
		if u == 0 {
			t.Errorf("compact counts still contain empty buckets: %v", compact.U)
		}
	}
	if compact.N != c.N || compact.Total != c.Total {
		t.Errorf("compact lost totals")
	}
	if compact.V[0][2] != c.V[0][3] || compact.Sum[0][2] != c.Sum[0][3] {
		t.Errorf("compact misaligned V/Sum")
	}
	if compact.MinVal[2] != c.MinVal[3] {
		t.Errorf("compact misaligned extremes")
	}
	// Identity case: no empty buckets returns the same counts.
	full, err := Count(rel, 0, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	same, mapping := full.Compact()
	if same != full {
		t.Errorf("compact of full counts should be identity")
	}
	if !reflect.DeepEqual(mapping, []int{0, 1, 2, 3}) {
		t.Errorf("identity mapping = %v", mapping)
	}
}

func TestParallelCountMatchesSequential(t *testing.T) {
	n := 30000
	rel := uniformRelation(t, n, 5)
	rng := rand.New(rand.NewSource(6))
	bounds, err := SampledBoundaries(rel, 0, 100, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Bools: []BoolCond{{Attr: 1, Want: true}}, TrackExtremes: true}
	seq, err := Count(rel, 0, bounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 2, 3, 7, 16} {
		par, err := ParallelCount(rel, 0, bounds, opts, pes)
		if err != nil {
			t.Fatalf("pes=%d: %v", pes, err)
		}
		if !reflect.DeepEqual(par.U, seq.U) {
			t.Errorf("pes=%d: U differs", pes)
		}
		if !reflect.DeepEqual(par.V, seq.V) {
			t.Errorf("pes=%d: V differs", pes)
		}
		if !reflect.DeepEqual(par.MinVal, seq.MinVal) || !reflect.DeepEqual(par.MaxVal, seq.MaxVal) {
			t.Errorf("pes=%d: extremes differ", pes)
		}
		if par.N != seq.N || par.Total != seq.Total {
			t.Errorf("pes=%d: totals differ", pes)
		}
	}
}

func TestParallelCountMorePEsThanRows(t *testing.T) {
	rel := uniformRelation(t, 3, 8)
	bounds, _ := NewBoundaries([]float64{0.5e6})
	c, err := ParallelCount(rel, 0, bounds, Options{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 {
		t.Errorf("N = %d, want 3", c.N)
	}
	if _, err := ParallelCount(rel, 0, bounds, Options{}, 0); err == nil {
		t.Errorf("zero PEs accepted")
	}
}

func TestParallelCountOnDiskRelation(t *testing.T) {
	// Algorithm 3.2's real use case: disjoint scans of an on-disk file.
	schema := relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	}
	path := t.TempDir() + "/par.opr"
	dw, err := relation.NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := 20000
	for i := 0; i < n; i++ {
		if err := dw.Append([]float64{rng.Float64() * 100}, []bool{rng.Intn(3) == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := NewBoundaries([]float64{25, 50, 75})
	opts := Options{Bools: []BoolCond{{Attr: 1, Want: true}}}
	seq, err := Count(dr, 0, bounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelCount(dr, 0, bounds, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.U, par.U) || !reflect.DeepEqual(seq.V, par.V) {
		t.Errorf("disk parallel count differs from sequential")
	}
}
