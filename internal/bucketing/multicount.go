package bucketing

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"optrule/internal/relation"
	"optrule/internal/sampling"
	"optrule/internal/stats"
)

// Fused multi-driver counting. The paper's premise is that the database
// is far larger than main memory, so the sequential-scan count is the
// currency of performance: counting d numeric attributes with d
// independent Count calls reads the relation d times end to end. The
// MultiCount family below produces a Counts per driver from ONE
// sequential scan, which is what lets the miner's whole MineAll
// pipeline cost one sampling scan plus one counting scan regardless of
// how many numeric attributes the relation has.

// validateMulti checks drivers/bounds shapes and every referenced
// attribute against the schema.
func validateMulti(s relation.Schema, drivers []int, bounds []Boundaries, opts Options) error {
	if len(drivers) == 0 {
		return fmt.Errorf("bucketing: no driver attributes")
	}
	if len(bounds) != len(drivers) {
		return fmt.Errorf("bucketing: %d drivers but %d boundary sets", len(drivers), len(bounds))
	}
	for _, d := range drivers {
		if err := validateOptions(s, d, opts); err != nil {
			return err
		}
	}
	return nil
}

// multiScanColumns assembles the column set of the fused counting scan:
// all drivers, then targets (numeric), then objective + filter
// attributes (bool, deduplicated).
func multiScanColumns(drivers []int, opts Options) (cols relation.ColumnSet, targetPos []int, boolPos []int, filterPos []int) {
	cols.Numeric = append(cols.Numeric, drivers...)
	targetPos = make([]int, len(opts.Targets))
	for k, a := range opts.Targets {
		targetPos[k] = len(cols.Numeric)
		cols.Numeric = append(cols.Numeric, a)
	}
	boolAt := map[int]int{}
	add := func(attr int) int {
		if p, ok := boolAt[attr]; ok {
			return p
		}
		p := len(cols.Bool)
		boolAt[attr] = p
		cols.Bool = append(cols.Bool, attr)
		return p
	}
	boolPos = make([]int, len(opts.Bools))
	for k, bc := range opts.Bools {
		boolPos[k] = add(bc.Attr)
	}
	filterPos = make([]int, len(opts.Filter))
	for k, bc := range opts.Filter {
		filterPos[k] = add(bc.Attr)
	}
	return cols, targetPos, boolPos, filterPos
}

// driverWork is one driver's tally state during the fused scan.
// Excluded rows — filter rejects and NaN drivers — never reach the
// tally code, and N is derived from the bucket populations at finalize
// time so the hot loop maintains no extra counter.
type driverWork struct {
	m     int // bucket count
	total int
	nans  int
	u     []int
	v     [][]int
	sum   [][]float64
	minv  []float64 // nil unless TrackExtremes
	maxv  []float64
}

func newDriverWork(m int, opts Options) *driverWork {
	w := &driverWork{
		m:   m,
		u:   make([]int, m),
		v:   make([][]int, len(opts.Bools)),
		sum: make([][]float64, len(opts.Targets)),
	}
	for k := range w.v {
		w.v[k] = make([]int, m)
	}
	for k := range w.sum {
		w.sum[k] = make([]float64, m)
	}
	if opts.TrackExtremes {
		w.minv = make([]float64, m)
		w.maxv = make([]float64, m)
		for i := range w.minv {
			w.minv[i] = math.Inf(1)
			w.maxv[i] = math.Inf(-1)
		}
	}
	return w
}

// finalize converts the work state into Counts.
func (w *driverWork) finalize(opts Options) *Counts {
	c := newCounts(w.m, opts)
	c.Total = w.total
	c.NaNs = w.nans
	copy(c.U, w.u)
	for i := 0; i < w.m; i++ {
		c.N += w.u[i]
	}
	for k := range c.V {
		copy(c.V[k], w.v[k])
	}
	for k := range c.Sum {
		copy(c.Sum[k], w.sum[k])
	}
	if c.MinVal != nil {
		copy(c.MinVal, w.minv)
		copy(c.MaxVal, w.maxv)
	}
	return c
}

// multiScratch holds per-scan scratch buffers reused across batches so
// the hot loops allocate nothing.
type multiScratch struct {
	mask []bool // filter verdict per row; nil when there is no filter
}

// multiCountBatch tallies one batch into every driver's work state. The
// inner loops are batch-optimized: the filter mask is computed once per
// batch (not once per driver per row), Total is hoisted out of the row
// loops, and each driver runs ONE tight loop over its column slice in
// which the bucket index is located with the slot-table lookup of
// Boundaries.Locate inlined (the call is too large for the compiler to
// inline and runs once per tuple per driver) and every tally —
// population, extremes, objective counts, target sums — happens while
// the value and bucket index are still in registers. The objective
// tallies are unrolled for the common low objective counts (the switch
// predicts perfectly, and the comparisons compile to flagless
// increments), so the loop body stays branch-light.
func multiCountBatch(works []*driverWork, b *relation.Batch, bounds []Boundaries, opts Options,
	targetPos, boolPos, filterPos []int, scratch *multiScratch) {
	n := b.Len
	// Filter mask: one pass per filter condition over its column.
	var mask []bool
	if len(opts.Filter) > 0 {
		if cap(scratch.mask) < n {
			scratch.mask = make([]bool, n)
		}
		mask = scratch.mask[:n]
		for row := range mask {
			mask[row] = true
		}
		for k, bc := range opts.Filter {
			col := b.Bool[filterPos[k]]
			want := bc.Want
			for row := 0; row < n; row++ {
				if col[row] != want {
					mask[row] = false
				}
			}
		}
	}
	nb := len(opts.Bools)
	var b0, b1, b2 []bool
	var w0, w1, w2 bool
	if nb > 0 {
		b0, w0 = b.Bool[boolPos[0]], opts.Bools[0].Want
	}
	if nb > 1 {
		b1, w1 = b.Bool[boolPos[1]], opts.Bools[1].Want
	}
	if nb > 2 {
		b2, w2 = b.Bool[boolPos[2]], opts.Bools[2].Want
	}
	nt := len(opts.Targets)

	for d, w := range works {
		col := b.Numeric[d]
		bd := bounds[d]
		w.total += n
		cuts, base := bd.cuts, bd.slotBase
		slo, sscale := bd.slotLo, bd.slotScale
		nc := len(cuts)
		kslots := len(base) - 1
		u := w.u
		minv, maxv := w.minv, w.maxv
		var v0, v1, v2 []int
		if nb > 0 {
			v0 = w.v[0]
		}
		if nb > 1 {
			v1 = w.v[1]
		}
		if nb > 2 {
			v2 = w.v[2]
		}
		for row := 0; row < n; row++ {
			if mask != nil && !mask[row] {
				continue
			}
			x := col[row]
			if x != x { // NaN
				w.nans++
				continue
			}
			var i int
			switch {
			case base == nil:
				i = bd.Locate(x)
			case x <= cuts[0]:
				i = 0
			case x > cuts[nc-1]:
				i = nc
			default:
				s := int((x - slo) * sscale) // x > cuts[0] ⇒ s >= 0
				if s >= kslots {
					s = kslots - 1
				}
				lo, hi := int(base[s]), int(base[s+1])
				if hi >= nc {
					hi = nc - 1
				}
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if x <= cuts[mid] {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				i = lo
			}
			u[i]++
			if minv != nil {
				if x < minv[i] {
					minv[i] = x
				}
				if x > maxv[i] {
					maxv[i] = x
				}
			}
			switch nb {
			case 0:
			case 1:
				e0 := 0
				if b0[row] == w0 {
					e0 = 1
				}
				v0[i] += e0
			case 2:
				e0, e1 := 0, 0
				if b0[row] == w0 {
					e0 = 1
				}
				if b1[row] == w1 {
					e1 = 1
				}
				v0[i] += e0
				v1[i] += e1
			case 3:
				e0, e1, e2 := 0, 0, 0
				if b0[row] == w0 {
					e0 = 1
				}
				if b1[row] == w1 {
					e1 = 1
				}
				if b2[row] == w2 {
					e2 = 1
				}
				v0[i] += e0
				v1[i] += e1
				v2[i] += e2
			default:
				for k, bc := range opts.Bools {
					e := 0
					if b.Bool[boolPos[k]][row] == bc.Want {
						e = 1
					}
					w.v[k][i] += e
				}
			}
			for k := 0; k < nt; k++ {
				w.sum[k][i] += b.Numeric[targetPos[k]][row]
			}
		}
	}
}

// filterPredicate translates a non-empty Options.Filter into the
// storage layer's pushdown predicate, or returns nil when there is no
// filter to push. Every filter condition is a Boolean conjunct, which
// is exactly what the v3 zone maps (per-block true counts) can refute
// wholesale.
func filterPredicate(opts Options) *relation.Predicate {
	if len(opts.Filter) == 0 {
		return nil
	}
	p := &relation.Predicate{}
	for _, bc := range opts.Filter {
		p.Bools = append(p.Bools, relation.BoolPredicate{Attr: bc.Attr, Want: bc.Want})
	}
	return p
}

// scanMaybePruned drives the fused counting scan over [start,end):
// when a filter predicate exists and the relation supports pruned
// scans, storage block groups the filter provably rejects are skipped
// without being read or decoded — a skipped row touches only each
// driver's Total, which the skip callback settles directly. Otherwise
// the plain (range) scan runs and the batch kernel's mask does all the
// filtering, as before; the counts are identical either way because
// pruning only elides rows the mask would reject.
func scanMaybePruned(rel relation.Relation, rs relation.RangeScanner, start, end int,
	cols relation.ColumnSet, pred *relation.Predicate, works []*driverWork,
	fn func(*relation.Batch) error) error {
	if pred != nil {
		if prs, ok := rel.(relation.PrunedRangeScanner); ok {
			return prs.ScanRangePruned(start, end, cols, pred, func(rows int) error {
				for _, w := range works {
					w.total += rows
				}
				return nil
			}, fn)
		}
	}
	if rs != nil {
		return rs.ScanRange(start, end, cols, fn)
	}
	return rel.Scan(cols, fn)
}

// MultiCount is the fused counting scan: given boundaries for every
// driver attribute, it produces a Counts per driver — each identical to
// what Count(rel, drivers[d], bounds[d], opts) would return — from ONE
// sequential scan of the relation. opts (objectives, targets, filter,
// extremes) applies to every driver. A filter is pushed down to the
// storage layer when the relation supports pruned scans (see
// scanMaybePruned).
func MultiCount(rel relation.Relation, drivers []int, bounds []Boundaries, opts Options) ([]*Counts, error) {
	if err := validateMulti(rel.Schema(), drivers, bounds, opts); err != nil {
		return nil, err
	}
	cols, targetPos, boolPos, filterPos := multiScanColumns(drivers, opts)
	works := make([]*driverWork, len(drivers))
	for d := range works {
		works[d] = newDriverWork(bounds[d].NumBuckets(), opts)
	}
	scratch := &multiScratch{}
	err := scanMaybePruned(rel, nil, 0, rel.NumTuples(), cols, filterPredicate(opts), works,
		func(b *relation.Batch) error {
			multiCountBatch(works, b, bounds, opts, targetPos, boolPos, filterPos, scratch)
			return nil
		})
	if err != nil {
		return nil, err
	}
	cs := make([]*Counts, len(drivers))
	for d, w := range works {
		cs[d] = w.finalize(opts)
	}
	return cs, nil
}

// ParallelMultiCount generalizes Algorithm 3.2 to the fused scan with
// zone-map-aware dynamic scheduling: PlanScanChunks asks the storage
// layer to price block-group-aligned chunks (groups the common filter's
// zone maps prune cost ~0, surviving groups their physical bytes), the
// pes worker goroutines claim chunks off a shared queue, and the
// coordinator folds the per-CHUNK partials in chunk index order. The
// chunk plan is deterministic and the fold order fixed, so all integer
// statistics and extremes are identical to MultiCount regardless of
// worker count, placement, or steal order; target Sums accumulate in
// per-chunk order and so may differ from the sequential scan in the
// last float64 bits (as the per-segment fold always has). On storage
// without a block directory the chunks degrade to the static aligned
// segments, preserving the previous behavior exactly.
func ParallelMultiCount(rel relation.RangeScanner, drivers []int, bounds []Boundaries, opts Options, pes int) ([]*Counts, error) {
	if pes < 1 {
		return nil, fmt.Errorf("bucketing: processing element count %d must be positive", pes)
	}
	if err := validateMulti(rel.Schema(), drivers, bounds, opts); err != nil {
		return nil, err
	}
	n := rel.NumTuples()
	if pes > n {
		pes = n
	}
	if pes <= 1 {
		return MultiCount(rel, drivers, bounds, opts)
	}
	cols, targetPos, boolPos, filterPos := multiScanColumns(drivers, opts)
	pred := filterPredicate(opts)
	chunks := relation.PlanScanChunks(rel, pes, cols, pred)
	if len(chunks) <= 1 {
		return MultiCount(rel, drivers, bounds, opts)
	}
	partials := make([][]*driverWork, len(chunks))
	errs := make([]error, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := pes
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &multiScratch{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				local := make([]*driverWork, len(drivers))
				for d := range local {
					local[d] = newDriverWork(bounds[d].NumBuckets(), opts)
				}
				partials[i] = local
				if chunks[i].Pruned {
					// The planner proved this chunk empty under the pushdown
					// predicate, so the scan is settled without being issued:
					// its rows touch only each driver's Total — exactly what
					// the pruned scan's skip callback would have added.
					rows := chunks[i].End - chunks[i].Start
					for _, w := range local {
						w.total += rows
					}
					continue
				}
				errs[i] = scanMaybePruned(rel, rel, chunks[i].Start, chunks[i].End, cols, pred, local,
					func(b *relation.Batch) error {
						multiCountBatch(local, b, bounds, opts, targetPos, boolPos, filterPos, scratch)
						return nil
					})
			}
		}()
	}
	wg.Wait()
	// First error in chunk (row) order, deterministically.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := make([]*Counts, len(drivers))
	for d := range total {
		total[d] = newCounts(bounds[d].NumBuckets(), opts)
	}
	for _, part := range partials {
		for d := range total {
			total[d].merge(part[d].finalize(opts))
		}
	}
	return total, nil
}

// MultiSampledBoundaries fuses steps 1–3 of Algorithm 3.1 for several
// numeric attributes into ONE sampling scan: each attrs[k] gets an
// independent with-replacement sample of m·sampleFactor values driven by
// rngs[k] (the same stream SampledBoundaries would consume), and its
// equi-depth cut points are read off the sorted sample. Per-attribute
// results are identical to SampledBoundaries(rel, attrs[k], m,
// sampleFactor, rngs[k]).
//
// If exactDomainLimit > 0, the same scan also tracks each attribute's
// distinct value set; attributes with at most exactDomainLimit distinct
// finite values (and no NaNs) get finest buckets (Definition 2.5) —
// one bucket per distinct value — exactly as DistinctValueBoundaries
// would build, while the rest fall back to the sampled cut points.
func MultiSampledBoundaries(rel relation.Relation, attrs []int, m, sampleFactor, exactDomainLimit int, rngs []*rand.Rand) ([]Boundaries, error) {
	if m < 1 {
		return nil, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if len(attrs) != len(rngs) {
		return nil, fmt.Errorf("bucketing: %d attributes but %d rngs", len(attrs), len(rngs))
	}
	specs := make([]BoundarySpec, len(attrs))
	for k, attr := range attrs {
		specs[k] = BoundarySpec{Attr: attr, M: m, SampleFactor: sampleFactor,
			ExactDomainLimit: exactDomainLimit}
	}
	return MultiSampledBoundarySpecs(rel, specs, rngs)
}

// BoundarySpec is one attribute's boundary request in a fused sampling
// scan: M almost equi-depth buckets from a sample of M·SampleFactor
// values, with the finest-bucket promotion (Definition 2.5) when
// ExactDomainLimit > 0. Specs are independent: the same scan can build
// a 1000-bucket 1-D bucketing and a 64-bucket 2-D grid axis, each from
// its own random stream.
type BoundarySpec struct {
	Attr             int
	M                int
	SampleFactor     int
	ExactDomainLimit int // 0 = no finest-bucket promotion
}

// MultiSampledBoundarySpecs generalizes MultiSampledBoundaries to
// heterogeneous per-attribute resolutions: every spec's result is
// identical to SampledBoundaries (or the finest-bucket path) run alone
// with rngs[k], while the relation is scanned at most once for the
// whole set.
func MultiSampledBoundarySpecs(rel relation.Relation, specs []BoundarySpec, rngs []*rand.Rand) ([]Boundaries, error) {
	if len(specs) != len(rngs) {
		return nil, fmt.Errorf("bucketing: %d specs but %d rngs", len(specs), len(rngs))
	}
	reqs := make([]sampling.ColumnRequest, len(specs))
	for k, spec := range specs {
		if spec.SampleFactor < 1 {
			return nil, fmt.Errorf("bucketing: sample factor %d must be positive", spec.SampleFactor)
		}
		if spec.M < 1 {
			return nil, fmt.Errorf("bucketing: bucket count %d must be positive", spec.M)
		}
		s := spec.M * spec.SampleFactor
		if spec.M == 1 {
			s = 0 // finest-bucket detection may still need the scan; sampling does not
		}
		reqs[k] = sampling.ColumnRequest{Attr: spec.Attr, S: s, Rng: rngs[k],
			TrackDistinct: spec.ExactDomainLimit}
	}
	out := make([]Boundaries, len(specs))
	samples, err := sampling.MultiColumnRequests(rel, reqs)
	if err != nil {
		return nil, err
	}
	for k, spec := range specs {
		if spec.ExactDomainLimit > 0 && samples[k].Distinct != nil {
			// Finest buckets: cut at every distinct value except the
			// largest, so bucket i is exactly [v_i, v_i].
			distinct := samples[k].Distinct
			bounds, err := NewBoundaries(distinct[:len(distinct)-1])
			if err != nil {
				return nil, err
			}
			out[k] = bounds
			continue
		}
		if spec.M == 1 {
			out[k] = Boundaries{}
			continue
		}
		// Missing values (NaN) carry no order information; drop them from
		// the sample so cut points stay well defined, matching
		// SampledBoundaries.
		sample := samples[k].Sample
		clean := sample[:0]
		for _, x := range sample {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return nil, fmt.Errorf("bucketing: attribute %d sampled only NaN values", spec.Attr)
		}
		stats.SortFloat64s(clean)
		bounds, err := FromSortedSample(clean, spec.M)
		if err != nil {
			return nil, err
		}
		out[k] = bounds
	}
	return out, nil
}
