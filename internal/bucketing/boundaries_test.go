package bucketing

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"optrule/internal/relation"
	"optrule/internal/stats"
)

func uniformRelation(t testing.TB, n int, seed int64) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(seed))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		rel.MustAppend([]float64{rng.Float64() * 1e6}, []bool{rng.Intn(2) == 0})
	}
	return rel
}

func TestNewBoundariesValidation(t *testing.T) {
	if _, err := NewBoundaries([]float64{1, 2, 3}); err != nil {
		t.Errorf("sorted cuts rejected: %v", err)
	}
	if _, err := NewBoundaries([]float64{1, 1, 2}); err != nil {
		t.Errorf("ties should be allowed: %v", err)
	}
	if _, err := NewBoundaries([]float64{2, 1}); err == nil {
		t.Errorf("unsorted cuts accepted")
	}
}

func TestLocateSemantics(t *testing.T) {
	b, err := NewBoundaries([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d, want 4", b.NumBuckets())
	}
	cases := []struct {
		x    float64
		want int
	}{
		{-100, 0}, {10, 0}, // p0 < x <= p1 semantics: x == cut belongs left
		{10.0001, 1}, {20, 1},
		{25, 2}, {30, 2},
		{31, 3}, {1e12, 3},
	}
	for _, c := range cases {
		if got := b.Locate(c.x); got != c.want {
			t.Errorf("Locate(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBucketRange(t *testing.T) {
	b, _ := NewBoundaries([]float64{10, 20})
	lo, hi := b.BucketRange(0)
	if !math.IsInf(lo, -1) || hi != 10 {
		t.Errorf("bucket 0 range = (%g, %g]", lo, hi)
	}
	lo, hi = b.BucketRange(1)
	if lo != 10 || hi != 20 {
		t.Errorf("bucket 1 range = (%g, %g]", lo, hi)
	}
	lo, hi = b.BucketRange(2)
	if lo != 20 || !math.IsInf(hi, 1) {
		t.Errorf("bucket 2 range = (%g, %g]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range bucket should panic")
		}
	}()
	b.BucketRange(3)
}

func TestLocateAgreesWithLinearScanProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%50) + 2
		cuts := make([]float64, m-1)
		for i := range cuts {
			cuts[i] = rng.Float64() * 100
		}
		sort.Float64s(cuts)
		b, err := NewBoundaries(cuts)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			x := rng.Float64()*120 - 10
			want := 0
			for want < len(cuts) && x > cuts[want] {
				want++
			}
			if b.Locate(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromSortedSampleEdges(t *testing.T) {
	if _, err := FromSortedSample(nil, 2); err == nil {
		t.Errorf("empty sample accepted for m>1")
	}
	b, err := FromSortedSample(nil, 1)
	if err != nil || b.NumBuckets() != 1 {
		t.Errorf("m=1 should need no sample: %v, %d", err, b.NumBuckets())
	}
	if _, err := FromSortedSample([]float64{1}, 0); err == nil {
		t.Errorf("m=0 accepted")
	}
	// Single bucket puts everything in bucket 0.
	if b.Locate(-1e18) != 0 || b.Locate(1e18) != 0 {
		t.Errorf("single bucket should hold everything")
	}
}

func TestSampledBoundariesAlmostEquiDepth(t *testing.T) {
	n := 200000
	m := 50
	rel := uniformRelation(t, n, 1)
	rng := rand.New(rand.NewSource(2))
	bounds, err := SampledBoundaries(rel, 0, m, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bounds.NumBuckets() != m {
		t.Fatalf("NumBuckets = %d, want %d", bounds.NumBuckets(), m)
	}
	counts, err := Count(rel, 0, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.2: with S = 40·M, the chance of any bucket deviating by
	// >= 50% is small; deviations of 2x the ideal depth would indicate a
	// broken sampler.
	dev := stats.DepthDeviation(counts.U)
	if dev > 0.5 {
		t.Errorf("worst bucket depth deviation %g, want <= 0.5", dev)
	}
	total := 0
	for _, u := range counts.U {
		total += u
	}
	if total != n {
		t.Errorf("bucket sizes sum to %d, want %d", total, n)
	}
}

func TestSampledBoundariesErrors(t *testing.T) {
	rel := uniformRelation(t, 100, 3)
	rng := rand.New(rand.NewSource(1))
	if _, err := SampledBoundaries(rel, 0, 10, 0, rng); err == nil {
		t.Errorf("zero sample factor accepted")
	}
	if _, err := SampledBoundaries(rel, 0, 0, 40, rng); err == nil {
		t.Errorf("zero buckets accepted")
	}
	if b, err := SampledBoundaries(rel, 0, 1, 40, rng); err != nil || b.NumBuckets() != 1 {
		t.Errorf("m=1 should succeed trivially: %v", err)
	}
}

func TestExactBoundariesPerfectlyEquiDepth(t *testing.T) {
	n, m := 1000, 10
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(n - i) // reversed; ExactBoundaries must sort
	}
	bounds, err := ExactBoundaries(col, m)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, m)
	for _, v := range col {
		sizes[bounds.Locate(v)]++
	}
	for i, s := range sizes {
		if s != n/m {
			t.Errorf("bucket %d size %d, want %d", i, s, n/m)
		}
	}
}

func TestDistinctValueBoundariesFinest(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "Age", Kind: relation.Numeric}})
	ages := []float64{30, 20, 20, 40, 30, 30}
	for _, a := range ages {
		rel.MustAppend([]float64{a}, nil)
	}
	bounds, err := DistinctValueBoundaries(rel, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bounds.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d, want 3 (distinct values)", bounds.NumBuckets())
	}
	// Each distinct value must land in its own bucket.
	if bounds.Locate(20) == bounds.Locate(30) || bounds.Locate(30) == bounds.Locate(40) {
		t.Errorf("distinct values share buckets: 20->%d 30->%d 40->%d",
			bounds.Locate(20), bounds.Locate(30), bounds.Locate(40))
	}
	// Cap enforcement.
	if _, err := DistinctValueBoundaries(rel, 0, 2); err == nil {
		t.Errorf("distinct-value cap not enforced")
	}
	empty := relation.MustNewMemoryRelation(relation.Schema{{Name: "Age", Kind: relation.Numeric}})
	if _, err := DistinctValueBoundaries(empty, 0, 10); err == nil {
		t.Errorf("empty relation accepted")
	}
}
