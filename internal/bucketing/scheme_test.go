package bucketing

import (
	"math"
	"testing"

	"optrule/internal/relation"
	"optrule/internal/stats"
)

func TestEquiWidthBoundaries(t *testing.T) {
	b, err := EquiWidthBoundaries(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	cuts := b.Cuts()
	if len(cuts) != 3 || cuts[0] != 25 || cuts[1] != 50 || cuts[2] != 75 {
		t.Errorf("cuts = %v, want [25 50 75]", cuts)
	}
	if b.Locate(10) != 0 || b.Locate(30) != 1 || b.Locate(99) != 3 {
		t.Errorf("Locate misplaced values")
	}
	if _, err := EquiWidthBoundaries(5, 5, 4); err == nil {
		t.Errorf("degenerate range accepted")
	}
	if _, err := EquiWidthBoundaries(0, 10, 0); err == nil {
		t.Errorf("zero buckets accepted")
	}
	single, err := EquiWidthBoundaries(0, 10, 1)
	if err != nil || single.NumBuckets() != 1 {
		t.Errorf("single bucket failed: %v", err)
	}
}

func TestColumnExtremes(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for _, v := range []float64{5, -3, math.NaN(), 17, 0} {
		rel.MustAppend([]float64{v}, nil)
	}
	lo, hi, err := ColumnExtremes(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo != -3 || hi != 17 {
		t.Errorf("extremes = [%g, %g], want [-3, 17]", lo, hi)
	}
	allNaN := relation.MustNewMemoryRelation(rel.Schema())
	allNaN.MustAppend([]float64{math.NaN()}, nil)
	if _, _, err := ColumnExtremes(allNaN, 0); err == nil {
		t.Errorf("all-NaN column accepted")
	}
}

func TestEquiWidthSkewOnSkewedData(t *testing.T) {
	// Exponential-ish data: equi-width buckets are badly unbalanced,
	// the property footnote 3 warns about.
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for i := 1; i <= 4096; i++ {
		rel.MustAppend([]float64{math.Log2(float64(i))}, nil) // heavy right tail in log space? keep it simple
	}
	// Values are log2(i) in [0, 12]: density increases towards 12, so
	// equi-width buckets at the low end are nearly empty.
	lo, hi, err := ColumnExtremes(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EquiWidthBoundaries(lo, hi, 12)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Count(rel, 0, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dev := stats.DepthDeviation(counts.U); dev < 1 {
		t.Errorf("expected heavy skew (>100%% deviation), got %g", dev)
	}
}
