package bucketing

import (
	"fmt"
	"math"

	"optrule/internal/relation"
)

// BoolCond is a primitive Boolean condition (A = yes) or (A = no) used
// both as the objective condition C of a rule and, conjoined, as the
// presumptive condition C1 of the generalized rules of Section 4.3.
type BoolCond struct {
	Attr int  // schema position of a Boolean attribute
	Want bool // required value
}

// Options selects what the counting pass tallies per bucket.
type Options struct {
	// Bools lists the Boolean objective conditions whose per-bucket
	// "yes" counts v_i are needed — one V row per entry.
	Bools []BoolCond
	// Targets lists numeric attributes whose per-bucket value sums are
	// needed (Section 5, optimized ranges for the average operator) —
	// one Sum row per entry.
	Targets []int
	// Filter, if non-empty, is a conjunction of Boolean conditions C1:
	// tuples failing any condition are excluded from all counts. This is
	// exactly the u_i/v_i redefinition of Section 4.3.
	Filter []BoolCond
	// TrackExtremes records the minimum and maximum driver value
	// actually observed in each bucket, so reported rule ranges are the
	// paper's closed intervals [x_s, y_t] over real data values rather
	// than cut-point intervals.
	TrackExtremes bool
}

// Counts are per-bucket statistics for one driver attribute.
type Counts struct {
	// M is the number of buckets.
	M int
	// N is the number of tuples that passed the filter (Σ U).
	N int
	// Total is the number of tuples scanned (before the filter).
	Total int
	// NaNs is the number of filtered-in tuples whose driver value was
	// NaN; such tuples belong to no bucket and are excluded from every
	// statistic. Real-world numeric columns contain missing values, and
	// silently binning them would corrupt every range.
	NaNs int
	// U[i] is u_i: tuples whose driver value lies in bucket i.
	U []int
	// V[k][i] is v_i for Options.Bools[k]: tuples in bucket i that also
	// meet the k-th objective condition.
	V [][]int
	// Sum[k][i] is the sum of Options.Targets[k] values over bucket i.
	Sum [][]float64
	// MinVal/MaxVal are the observed driver extremes per bucket
	// (+Inf/−Inf for empty buckets); only set if TrackExtremes.
	MinVal, MaxVal []float64
}

// newCounts allocates zeroed counts for m buckets.
func newCounts(m int, opts Options) *Counts {
	c := &Counts{
		M:   m,
		U:   make([]int, m),
		V:   make([][]int, len(opts.Bools)),
		Sum: make([][]float64, len(opts.Targets)),
	}
	for k := range c.V {
		c.V[k] = make([]int, m)
	}
	for k := range c.Sum {
		c.Sum[k] = make([]float64, m)
	}
	if opts.TrackExtremes {
		c.MinVal = make([]float64, m)
		c.MaxVal = make([]float64, m)
		for i := 0; i < m; i++ {
			c.MinVal[i] = math.Inf(1)
			c.MaxVal[i] = math.Inf(-1)
		}
	}
	return c
}

// merge adds other into c. Shapes must match.
func (c *Counts) merge(other *Counts) {
	c.N += other.N
	c.Total += other.Total
	c.NaNs += other.NaNs
	for i := range c.U {
		c.U[i] += other.U[i]
	}
	for k := range c.V {
		for i := range c.V[k] {
			c.V[k][i] += other.V[k][i]
		}
	}
	for k := range c.Sum {
		for i := range c.Sum[k] {
			//optlint:ignore floatmerge target sums fold in fixed chunk-index order (ParallelMultiCount's coordinator), so the result is deterministic for a given chunk plan regardless of worker count or steal order
			c.Sum[k][i] += other.Sum[k][i]
		}
	}
	if c.MinVal != nil && other.MinVal != nil {
		for i := range c.MinVal {
			if other.MinVal[i] < c.MinVal[i] {
				c.MinVal[i] = other.MinVal[i]
			}
			if other.MaxVal[i] > c.MaxVal[i] {
				c.MaxVal[i] = other.MaxVal[i]
			}
		}
	}
}

// Compact removes empty buckets, returning new counts whose buckets all
// satisfy the u_i >= 1 assumption of Section 4's algorithms, plus a
// mapping from compact bucket index to original bucket index. Adjacent
// bucket order is preserved, so ranges of consecutive compact buckets
// are still ranges of consecutive original buckets.
func (c *Counts) Compact() (*Counts, []int) {
	keep := make([]int, 0, c.M)
	for i, u := range c.U {
		if u > 0 {
			keep = append(keep, i)
		}
	}
	if len(keep) == c.M {
		return c, identity(c.M)
	}
	out := &Counts{
		M:     len(keep),
		N:     c.N,
		Total: c.Total,
		NaNs:  c.NaNs,
		U:     make([]int, len(keep)),
		V:     make([][]int, len(c.V)),
		Sum:   make([][]float64, len(c.Sum)),
	}
	for k := range c.V {
		out.V[k] = make([]int, len(keep))
	}
	for k := range c.Sum {
		out.Sum[k] = make([]float64, len(keep))
	}
	if c.MinVal != nil {
		out.MinVal = make([]float64, len(keep))
		out.MaxVal = make([]float64, len(keep))
	}
	for j, i := range keep {
		out.U[j] = c.U[i]
		for k := range c.V {
			out.V[k][j] = c.V[k][i]
		}
		for k := range c.Sum {
			out.Sum[k][j] = c.Sum[k][i]
		}
		if c.MinVal != nil {
			out.MinVal[j] = c.MinVal[i]
			out.MaxVal[j] = c.MaxVal[i]
		}
	}
	return out, keep
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// validateOptions checks every referenced attribute against the schema.
func validateOptions(s relation.Schema, driver int, opts Options) error {
	if driver < 0 || driver >= len(s) || s[driver].Kind != relation.Numeric {
		return fmt.Errorf("bucketing: driver attribute %d is not a numeric column", driver)
	}
	for _, bc := range opts.Bools {
		if bc.Attr < 0 || bc.Attr >= len(s) || s[bc.Attr].Kind != relation.Boolean {
			return fmt.Errorf("bucketing: objective attribute %d is not a boolean column", bc.Attr)
		}
	}
	for _, a := range opts.Targets {
		if a < 0 || a >= len(s) || s[a].Kind != relation.Numeric {
			return fmt.Errorf("bucketing: target attribute %d is not a numeric column", a)
		}
	}
	for _, bc := range opts.Filter {
		if bc.Attr < 0 || bc.Attr >= len(s) || s[bc.Attr].Kind != relation.Boolean {
			return fmt.Errorf("bucketing: filter attribute %d is not a boolean column", bc.Attr)
		}
	}
	return nil
}

// scanColumns assembles the column set one counting scan needs:
// driver + targets (numeric) and objective + filter attributes (bool).
// It returns the set plus the position of each logical column within
// it. The single-driver layout is the one-element case of the fused
// scan's multiScanColumns.
func scanColumns(driver int, opts Options) (cols relation.ColumnSet, targetPos []int, boolPos []int, filterPos []int) {
	return multiScanColumns([]int{driver}, opts)
}

// countBatch tallies one batch into c.
func countBatch(c *Counts, b *relation.Batch, bounds Boundaries, opts Options, targetPos, boolPos, filterPos []int) {
	driver := b.Numeric[0]
	c.Total += b.Len
	filtered := len(opts.Filter) > 0
	for row := 0; row < b.Len; row++ {
		if filtered {
			pass := true
			for k, bc := range opts.Filter {
				if b.Bool[filterPos[k]][row] != bc.Want {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
		}
		x := driver[row]
		if math.IsNaN(x) {
			c.NaNs++
			continue
		}
		i := bounds.Locate(x)
		c.N++
		c.U[i]++
		for k, bc := range opts.Bools {
			if b.Bool[boolPos[k]][row] == bc.Want {
				c.V[k][i]++
			}
		}
		for k := range opts.Targets {
			c.Sum[k][i] += b.Numeric[targetPos[k]][row]
		}
		if c.MinVal != nil {
			if x < c.MinVal[i] {
				c.MinVal[i] = x
			}
			if x > c.MaxVal[i] {
				c.MaxVal[i] = x
			}
		}
	}
}

// Count performs step 4 of Algorithm 3.1 in a single sequential scan:
// it assigns every tuple to its bucket by binary search and accumulates
// the per-bucket statistics requested in opts. O(N log M).
func Count(rel relation.Relation, driver int, bounds Boundaries, opts Options) (*Counts, error) {
	if err := validateOptions(rel.Schema(), driver, opts); err != nil {
		return nil, err
	}
	cols, targetPos, boolPos, filterPos := scanColumns(driver, opts)
	c := newCounts(bounds.NumBuckets(), opts)
	err := rel.Scan(cols, func(b *relation.Batch) error {
		countBatch(c, b, bounds, opts, targetPos, boolPos, filterPos)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// segmentBounds splits [0, n) into pes contiguous segments for the
// parallel counting scan; see relation.AlignedSegments (where the
// block-group-snapping logic now lives, shared with the miner's fused
// 2-D counting scan).
func segmentBounds(rel relation.Relation, n, pes int) []int {
	return relation.AlignedSegments(rel, n, pes)
}

// ParallelCount is Algorithm 3.2: the relation's rows are split into
// pes contiguous segments (aligned to the storage layer's block groups
// when it declares them), each counted by its own goroutine
// ("processing element") with no shared state, and the coordinator sums
// the partial counts. Results are identical to Count.
func ParallelCount(rel relation.RangeScanner, driver int, bounds Boundaries, opts Options, pes int) (*Counts, error) {
	if pes < 1 {
		return nil, fmt.Errorf("bucketing: processing element count %d must be positive", pes)
	}
	if err := validateOptions(rel.Schema(), driver, opts); err != nil {
		return nil, err
	}
	n := rel.NumTuples()
	if pes > n {
		pes = n
	}
	if pes <= 1 {
		return Count(rel, driver, bounds, opts)
	}
	cols, targetPos, boolPos, filterPos := scanColumns(driver, opts)
	segs := segmentBounds(rel, n, pes)
	partials := make([]*Counts, pes)
	errs := make(chan error, pes)
	for p := 0; p < pes; p++ {
		go func(p int) {
			start, end := segs[p], segs[p+1]
			local := newCounts(bounds.NumBuckets(), opts)
			partials[p] = local
			errs <- rel.ScanRange(start, end, cols, func(b *relation.Batch) error {
				countBatch(local, b, bounds, opts, targetPos, boolPos, filterPos)
				return nil
			})
		}(p)
	}
	var firstErr error
	for p := 0; p < pes; p++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	total := newCounts(bounds.NumBuckets(), opts)
	for _, part := range partials {
		total.merge(part)
	}
	return total, nil
}
