package bucketing

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// referenceLocate is the plain binary search the slot-table fast path
// must agree with exactly.
func referenceLocate(cuts []float64, x float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// TestLocateBatchMatchesLocate pins the batch kernel (clamped-slot
// variant, used by the fused 2-D counting scan) to Locate exactly,
// with NaN mapping to −1.
func TestLocateBatchMatchesLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	gens := []func() float64{
		func() float64 { return rng.Float64() * 1000 },
		func() float64 { return math.Exp(rng.NormFloat64()) },
		func() float64 { return float64(rng.Intn(30)) },
	}
	for gi, gen := range gens {
		for _, m := range []int{1, 2, 15, 16, 63, 255, 1000} {
			cuts := make([]float64, m)
			for i := range cuts {
				cuts[i] = gen()
			}
			sort.Float64s(cuts)
			b, err := NewBoundaries(cuts)
			if err != nil {
				t.Fatal(err)
			}
			col := []float64{math.Inf(-1), math.Inf(1), math.NaN(), cuts[0], cuts[m-1]}
			for _, c := range cuts {
				col = append(col, c, math.Nextafter(c, math.Inf(-1)), math.Nextafter(c, math.Inf(1)))
			}
			for i := 0; i < 3000; i++ {
				col = append(col, gen())
			}
			out := make([]int32, len(col))
			b.LocateBatch(col, out)
			for i, x := range col {
				want := int32(b.Locate(x))
				if math.IsNaN(x) {
					want = -1
				}
				if out[i] != want {
					t.Fatalf("gen %d m=%d: LocateBatch(%v) = %d, want %d", gi, m, x, out[i], want)
				}
			}
		}
	}
}

func TestLocateIndexMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	shapes := []func() float64{
		func() float64 { return rng.Float64() * 1000 },        // uniform
		func() float64 { return rng.NormFloat64() * 50 },      // gaussian
		func() float64 { return math.Exp(rng.NormFloat64()) }, // lognormal, heavy skew
		func() float64 { return float64(rng.Intn(40)) },       // heavy duplicates
		func() float64 { return rng.Float64()*1e-9 + 1e9 },    // tiny span at offset
	}
	for si, gen := range shapes {
		for _, m := range []int{1, 2, 15, 16, 17, 100, 1000} {
			cuts := make([]float64, m)
			for i := range cuts {
				cuts[i] = gen()
			}
			sort.Float64s(cuts)
			b, err := NewBoundaries(cuts)
			if err != nil {
				t.Fatal(err)
			}
			// Probe the exact cut values, their neighborhoods, extremes,
			// and random draws.
			probes := []float64{math.Inf(-1), math.Inf(1), math.NaN(), cuts[0], cuts[m-1]}
			for _, c := range cuts {
				probes = append(probes, c, math.Nextafter(c, math.Inf(-1)), math.Nextafter(c, math.Inf(1)))
			}
			for i := 0; i < 2000; i++ {
				probes = append(probes, gen())
			}
			for _, x := range probes {
				got := b.Locate(x)
				want := referenceLocate(cuts, x)
				if got != want {
					t.Fatalf("shape %d m=%d: Locate(%v) = %d, want %d", si, m, x, got, want)
				}
			}
		}
	}
}

func TestNewBoundariesRejectsNaNCuts(t *testing.T) {
	cuts := make([]float64, 20)
	for i := range cuts {
		cuts[i] = float64(i)
	}
	cuts[10] = math.NaN()
	// NaN slips past a pure sortedness check (all its comparisons are
	// false) and would poison the slot table; it must be rejected.
	if _, err := NewBoundaries(cuts); err == nil {
		t.Error("NaN cut accepted")
	}
}

func TestLocateDegenerateSpans(t *testing.T) {
	// All-equal cuts and infinite spans must fall back to binary search.
	equal := make([]float64, 64)
	for i := range equal {
		equal[i] = 42
	}
	b, err := NewBoundaries(equal)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{41, 42, 43, math.NaN()} {
		if got, want := b.Locate(x), referenceLocate(equal, x); got != want {
			t.Errorf("equal cuts: Locate(%v) = %d, want %d", x, got, want)
		}
	}
	inf := make([]float64, 64)
	for i := range inf {
		inf[i] = float64(i)
	}
	inf[0] = math.Inf(-1)
	inf[63] = math.Inf(1)
	b, err = NewBoundaries(inf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1e300, 0, 31.5, 1e300, math.Inf(1)} {
		if got, want := b.Locate(x), referenceLocate(inf, x); got != want {
			t.Errorf("inf cuts: Locate(%v) = %d, want %d", x, got, want)
		}
	}
}
