package bucketing

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"optrule/internal/relation"
)

// External sorting substrate. The paper's premise is that fully sorting
// a larger-than-memory database per numeric attribute is prohibitively
// expensive; this file implements that expensive baseline honestly — a
// classic two-phase external merge sort (bounded-memory sorted runs,
// then a k-way heap merge) — so the comparison against Algorithm 3.1's
// sampling can be made on genuinely disk-resident data.

// ExternalExactBoundaries computes perfectly equi-depth boundaries for
// the numeric attribute at schema position attr by externally sorting
// the column: at most memLimit float64 values are held in memory at a
// time; sorted runs are spilled to tmpDir and k-way merged, and the
// boundary cuts are read off the merged stream at the equi-depth ranks.
// NaN values are excluded (consistent with Count's NaN policy).
func ExternalExactBoundaries(rel relation.Relation, attr, m int, tmpDir string, memLimit int) (Boundaries, error) {
	if m < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: bucket count %d must be positive", m)
	}
	if memLimit < 1 {
		return Boundaries{}, fmt.Errorf("bucketing: memory limit %d must be positive", memLimit)
	}
	runs, n, err := writeSortedRuns(rel, attr, tmpDir, memLimit)
	defer removeRuns(runs)
	if err != nil {
		return Boundaries{}, err
	}
	if n == 0 {
		return Boundaries{}, fmt.Errorf("bucketing: attribute %d has no finite values", attr)
	}
	if m == 1 {
		return Boundaries{}, nil
	}
	// Ranks at which cuts are taken: ceil(i·n/m), 1-based.
	cuts := make([]float64, 0, m-1)
	nextCut := 1
	rank := 0
	err = mergeRuns(runs, func(v float64) error {
		rank++
		for nextCut < m && rank == (nextCut*n+m-1)/m {
			cuts = append(cuts, v)
			nextCut++
		}
		return nil
	})
	if err != nil {
		return Boundaries{}, err
	}
	return NewBoundaries(cuts)
}

// writeSortedRuns scans the column and spills sorted runs of at most
// memLimit values each to tmpDir. It returns the run paths and the
// number of finite values written.
func writeSortedRuns(rel relation.Relation, attr int, tmpDir string, memLimit int) ([]string, int, error) {
	var runs []string
	buf := make([]float64, 0, memLimit)
	total := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.Float64s(buf)
		path := filepath.Join(tmpDir, fmt.Sprintf("run-%d.bin", len(runs)))
		if err := writeRun(path, buf); err != nil {
			return err
		}
		runs = append(runs, path)
		total += len(buf)
		buf = buf[:0]
		return nil
	}
	err := rel.Scan(relation.ColumnSet{Numeric: []int{attr}}, func(b *relation.Batch) error {
		for _, v := range b.Numeric[0][:b.Len] {
			if math.IsNaN(v) {
				continue
			}
			buf = append(buf, v)
			if len(buf) == memLimit {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return runs, 0, err
	}
	if err := flush(); err != nil {
		return runs, 0, err
	}
	return runs, total, nil
}

// writeRun writes values as little-endian float64s.
func writeRun(path string, values []float64) error {
	//optlint:ignore atomicwrite spill runs are transient scratch in the sort's own temp dir, deleted after the merge; a crash aborts the whole sort and the partial run is never read
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<18)
	var b [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := w.Write(b[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// removeRuns deletes spilled run files, ignoring errors (best effort).
func removeRuns(runs []string) {
	for _, r := range runs {
		os.Remove(r)
	}
}

// runReader streams one sorted run.
type runReader struct {
	f   *os.File
	r   *bufio.Reader
	cur float64
	eof bool
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rr := &runReader{f: f, r: bufio.NewReaderSize(f, 1<<18)}
	if err := rr.next(); err != nil {
		f.Close()
		return nil, err
	}
	return rr, nil
}

// next advances to the following value, setting eof at the end.
func (rr *runReader) next() error {
	var b [8]byte
	_, err := io.ReadFull(rr.r, b[:])
	if err == io.EOF {
		rr.eof = true
		return nil
	}
	if err != nil {
		return err
	}
	rr.cur = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	return nil
}

// runHeap is a min-heap of run readers keyed by their current value.
type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].cur < h[j].cur }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns streams the k-way merge of sorted runs through emit, in
// ascending order.
func mergeRuns(runs []string, emit func(v float64) error) error {
	h := make(runHeap, 0, len(runs))
	defer func() {
		for _, rr := range h {
			rr.f.Close()
		}
	}()
	for _, path := range runs {
		rr, err := openRun(path)
		if err != nil {
			return err
		}
		if rr.eof {
			rr.f.Close()
			continue
		}
		h = append(h, rr)
	}
	heap.Init(&h)
	for h.Len() > 0 {
		rr := h[0]
		if err := emit(rr.cur); err != nil {
			return err
		}
		if err := rr.next(); err != nil {
			return err
		}
		if rr.eof {
			rr.f.Close()
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return nil
}
