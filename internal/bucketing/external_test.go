package bucketing

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"optrule/internal/relation"
)

func TestExternalExactBoundariesMatchesInMemory(t *testing.T) {
	n := 25000
	rel := uniformRelation(t, n, 41)
	col, err := rel.NumericColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactBoundaries(col, 64)
	if err != nil {
		t.Fatal(err)
	}
	// memLimit far below n forces multiple spilled runs.
	got, err := ExternalExactBoundaries(rel, 0, 64, t.TempDir(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	wc, gc := want.Cuts(), got.Cuts()
	if len(wc) != len(gc) {
		t.Fatalf("cut counts differ: %d vs %d", len(gc), len(wc))
	}
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("cut %d differs: external %g vs memory %g", i, gc[i], wc[i])
		}
	}
}

func TestExternalExactBoundariesOnDiskRelation(t *testing.T) {
	// End-to-end out-of-core: data on disk, sort spills on disk.
	schema := relation.Schema{{Name: "X", Kind: relation.Numeric}}
	dir := t.TempDir()
	path := filepath.Join(dir, "data.opr")
	dw, err := relation.NewDiskWriter(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := 50000
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.NormFloat64() * 1000
		if err := dw.Append([]float64{values[i]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := ExternalExactBoundaries(dr, 0, 100, dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect equi-depth: every bucket holds n/100 values.
	counts, err := Count(dr, 0, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range counts.U {
		if u != n/100 {
			t.Fatalf("bucket %d holds %d values, want %d", i, u, n/100)
		}
	}
	// Spill files are cleaned up.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "data.opr" {
			t.Errorf("leftover spill file %s", e.Name())
		}
	}
}

func TestExternalExactBoundariesSingleRun(t *testing.T) {
	// memLimit >= n: one run, no merge pressure.
	rel := uniformRelation(t, 500, 3)
	got, err := ExternalExactBoundaries(rel, 0, 10, t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := rel.NumericColumn(0)
	want, _ := ExactBoundaries(col, 10)
	for i := range want.Cuts() {
		if want.Cuts()[i] != got.Cuts()[i] {
			t.Fatalf("cut %d differs", i)
		}
	}
}

func TestExternalExactBoundariesSkipsNaN(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for i := 0; i < 100; i++ {
		v := float64(i)
		if i%4 == 0 {
			v = math.NaN()
		}
		rel.MustAppend([]float64{v}, nil)
	}
	bounds, err := ExternalExactBoundaries(rel, 0, 5, t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range bounds.Cuts() {
		if math.IsNaN(c) {
			t.Fatalf("NaN cut: %v", bounds.Cuts())
		}
	}
}

func TestExternalExactBoundariesErrors(t *testing.T) {
	rel := uniformRelation(t, 100, 5)
	if _, err := ExternalExactBoundaries(rel, 0, 0, t.TempDir(), 10); err == nil {
		t.Errorf("zero buckets accepted")
	}
	if _, err := ExternalExactBoundaries(rel, 0, 10, t.TempDir(), 0); err == nil {
		t.Errorf("zero memory limit accepted")
	}
	allNaN := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	allNaN.MustAppend([]float64{math.NaN()}, nil)
	if _, err := ExternalExactBoundaries(allNaN, 0, 5, t.TempDir(), 10); err == nil {
		t.Errorf("all-NaN column accepted")
	}
	// m=1 needs no cuts.
	b, err := ExternalExactBoundaries(rel, 0, 1, t.TempDir(), 10)
	if err != nil || b.NumBuckets() != 1 {
		t.Errorf("m=1 failed: %v", err)
	}
	// Unwritable temp dir.
	if _, err := ExternalExactBoundaries(rel, 0, 10, "/nonexistent-dir-xyz", 10); err == nil {
		t.Errorf("unwritable tmpDir accepted")
	}
}
