package bucketing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// multiRelation builds a relation with several numeric drivers (mixed
// scales, every 7th value of driver 1 NaN), one extra numeric target,
// and two Boolean attributes.
func multiRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
		{Name: "T", Kind: relation.Numeric},
		{Name: "D", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		a := rng.Float64() * 100
		b := rng.NormFloat64() * 1000
		if i%7 == 0 {
			b = math.NaN()
		}
		rel.MustAppend([]float64{a, b, rng.Float64() * 10},
			[]bool{rng.Intn(3) == 0, rng.Intn(2) == 0})
	}
	return rel
}

// multiCase is a shared fixture: drivers {A, B}, per-driver boundaries,
// and options exercising objectives, a target sum, and extremes.
func multiCase(t testing.TB, opts Options) (*relation.MemoryRelation, []int, []Boundaries) {
	rel := multiRelation(t, 3000)
	drivers := []int{0, 1}
	b0, err := NewBoundaries([]float64{20, 40, 60, 80})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewBoundaries([]float64{-1000, 0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	return rel, drivers, []Boundaries{b0, b1}
}

func multiOptions() Options {
	return Options{
		Bools:         []BoolCond{{Attr: 2, Want: true}, {Attr: 4, Want: false}},
		Targets:       []int{3},
		TrackExtremes: true,
	}
}

func TestMultiCountMatchesCountPerDriver(t *testing.T) {
	for _, withFilter := range []bool{false, true} {
		opts := multiOptions()
		if withFilter {
			opts.Filter = []BoolCond{{Attr: 4, Want: true}}
		}
		rel, drivers, bounds := multiCase(t, opts)
		got, err := MultiCount(rel, drivers, bounds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(drivers) {
			t.Fatalf("got %d counts, want %d", len(got), len(drivers))
		}
		for d, driver := range drivers {
			want, err := Count(rel, driver, bounds[d], opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[d], want) {
				t.Errorf("filter=%v driver %d: fused counts differ:\n got %+v\nwant %+v",
					withFilter, driver, got[d], want)
			}
		}
	}
}

func TestParallelMultiCountMatchesMultiCount(t *testing.T) {
	opts := multiOptions()
	rel, drivers, bounds := multiCase(t, opts)
	want, err := MultiCount(rel, drivers, bounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 2, 7, 16} {
		got, err := ParallelMultiCount(rel, drivers, bounds, opts, pes)
		if err != nil {
			t.Fatal(err)
		}
		for d := range drivers {
			g, w := got[d], want[d]
			if !reflect.DeepEqual(g.U, w.U) || !reflect.DeepEqual(g.V, w.V) {
				t.Errorf("pes=%d driver %d: U/V differ", pes, d)
			}
			if !reflect.DeepEqual(g.MinVal, w.MinVal) || !reflect.DeepEqual(g.MaxVal, w.MaxVal) {
				t.Errorf("pes=%d driver %d: extremes differ", pes, d)
			}
			if g.N != w.N || g.Total != w.Total || g.NaNs != w.NaNs {
				t.Errorf("pes=%d driver %d: totals differ", pes, d)
			}
			// Per-segment partial sums add in a different order, so the
			// target sums agree only up to float rounding.
			for k := range w.Sum {
				for i := range w.Sum[k] {
					if diff := g.Sum[k][i] - w.Sum[k][i]; math.Abs(diff) > 1e-6*(1+math.Abs(w.Sum[k][i])) {
						t.Errorf("pes=%d driver %d: Sum[%d][%d] = %g, want %g", pes, d, k, i, g.Sum[k][i], w.Sum[k][i])
					}
				}
			}
		}
	}
	if _, err := ParallelMultiCount(rel, drivers, bounds, opts, 0); err == nil {
		t.Error("pes=0 should be rejected")
	}
}

func TestMultiCountValidation(t *testing.T) {
	opts := multiOptions()
	rel, drivers, bounds := multiCase(t, opts)
	if _, err := MultiCount(rel, nil, nil, opts); err == nil {
		t.Error("no drivers should be rejected")
	}
	if _, err := MultiCount(rel, drivers, bounds[:1], opts); err == nil {
		t.Error("mismatched bounds length should be rejected")
	}
	if _, err := MultiCount(rel, []int{0, 2}, bounds, opts); err == nil {
		t.Error("boolean driver should be rejected")
	}
	bad := opts
	bad.Bools = []BoolCond{{Attr: 0, Want: true}}
	if _, err := MultiCount(rel, drivers, bounds, bad); err == nil {
		t.Error("numeric objective should be rejected")
	}
}

func TestMultiSampledBoundariesMatchSampledBoundaries(t *testing.T) {
	rel := multiRelation(t, 3000)
	attrs := []int{0, 1, 3}
	const m, sf = 50, 10
	rngs := make([]*rand.Rand, len(attrs))
	for k, attr := range attrs {
		rngs[k] = rand.New(rand.NewSource(100 + int64(attr)))
	}
	got, err := MultiSampledBoundaries(rel, attrs, m, sf, 0, rngs)
	if err != nil {
		t.Fatal(err)
	}
	for k, attr := range attrs {
		rng := rand.New(rand.NewSource(100 + int64(attr)))
		want, err := SampledBoundaries(rel, attr, m, sf, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[k].Cuts(), want.Cuts()) {
			t.Errorf("attr %d: fused boundaries differ from SampledBoundaries", attr)
		}
	}
}

func TestMultiSampledBoundariesExactDomains(t *testing.T) {
	// Attribute 0 has 8 distinct values (finest buckets apply);
	// attribute 1 is continuous (sampled equi-depth fallback).
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "Small", Kind: relation.Numeric},
		{Name: "Big", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		rel.MustAppend([]float64{float64(i % 8), rng.Float64()}, []bool{i%2 == 0})
	}
	attrs := []int{0, 1}
	rngs := []*rand.Rand{rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2))}
	bounds, err := MultiSampledBoundaries(rel, attrs, 20, 10, 10, rngs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DistinctValueBoundaries(rel, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bounds[0].Cuts(), want.Cuts()) {
		t.Errorf("finest buckets differ: got %v want %v", bounds[0].Cuts(), want.Cuts())
	}
	if bounds[0].NumBuckets() != 8 {
		t.Errorf("finest bucket count = %d, want 8", bounds[0].NumBuckets())
	}
	wantSampled, err := SampledBoundaries(rel, 1, 20, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bounds[1].Cuts(), wantSampled.Cuts()) {
		t.Errorf("large-domain attribute should fall back to sampled boundaries")
	}
}

func TestDistinctValueBoundariesRejectsNaN(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
	})
	for i := 0; i < 100; i++ {
		x := float64(i % 4)
		if i == 50 {
			x = math.NaN()
		}
		rel.MustAppend([]float64{x}, nil)
	}
	// NaN can't be a well-ordered cut point: finest buckets must be
	// refused so callers fall back to sampling, matching the fused
	// MultiSampledBoundaries tracker.
	if _, err := DistinctValueBoundaries(rel, 0, 10); err == nil {
		t.Error("NaN-bearing attribute accepted for finest buckets")
	}
}

func TestMultiSampledBoundariesSingleBucket(t *testing.T) {
	rel := multiRelation(t, 100)
	counting := &relation.CountingRelation{R: rel}
	rngs := []*rand.Rand{rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2))}
	bounds, err := MultiSampledBoundaries(counting, []int{0, 1}, 1, 40, 0, rngs)
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range bounds {
		if b.NumBuckets() != 1 {
			t.Errorf("attr %d: buckets = %d, want 1", k, b.NumBuckets())
		}
	}
	if counting.Scans != 0 {
		t.Errorf("single-bucket boundaries should need no scan, got %d", counting.Scans)
	}
}

func TestMultiCountOneFusedScan(t *testing.T) {
	opts := multiOptions()
	rel, drivers, bounds := multiCase(t, opts)
	counting := &relation.CountingRelation{R: rel}
	if _, err := MultiCount(counting, drivers, bounds, opts); err != nil {
		t.Fatal(err)
	}
	if counting.Scans != 1 {
		t.Errorf("MultiCount issued %d scans, want 1", counting.Scans)
	}
	if counting.Rows != int64(rel.NumTuples()) {
		t.Errorf("MultiCount read %d rows, want %d", counting.Rows, rel.NumTuples())
	}
}
