package bucketing

import (
	"math/rand"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func benchRelation(b *testing.B, n int) *relation.MemoryRelation {
	b.Helper()
	shape, err := datagen.NewPerfShape(1, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	return datagen.MustMaterialize(shape, n, 1)
}

func BenchmarkSampledBoundaries1M(b *testing.B) {
	rel := benchRelation(b, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := SampledBoundaries(rel, 0, 1000, 40, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCount1M(b *testing.B) {
	rel := benchRelation(b, 1000000)
	rng := rand.New(rand.NewSource(1))
	bounds, err := SampledBoundaries(rel, 0, 1000, 40, rng)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Bools: []BoolCond{{Attr: 1, Want: true}, {Attr: 2, Want: true}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(rel, 0, bounds, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(rel.NumTuples() * 8))
}

func BenchmarkExternalExactBoundaries200k(b *testing.B) {
	rel := benchRelation(b, 200000)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExternalExactBoundaries(rel, 0, 1000, dir, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
}
