package plan

import (
	"context"
	"math"
	"reflect"
	"testing"

	"optrule/internal/bucketing"
	"optrule/internal/relation"
)

// deltaTestRel builds a 3-column relation (numeric X, numeric Y, bool
// B) with n deterministic rows, including NaN drivers.
func deltaTestRel(t *testing.T, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "Y", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	appendDeltaRows(rel, 0, n)
	return rel
}

// appendDeltaRows appends rows [start, end) of the deterministic
// sequence, so a tail append continues exactly where the prefix ended.
func appendDeltaRows(rel *relation.MemoryRelation, start, end int) {
	for i := start; i < end; i++ {
		x := float64((i * 37) % 1000)
		if i%97 == 0 {
			x = math.NaN()
		}
		y := float64((i * 53) % 500)
		rel.MustAppend([]float64{x, y}, []bool{(i*31)%3 == 0})
	}
}

// deltaTestReq is the mixed requirement set the delta tests cache:
// an unfiltered extreme-tracking group, a filtered group, and a pair
// grid.
func deltaTestReq(gen int64) *Requirements {
	obj := bucketing.BoolCond{Attr: 2, Want: true}
	gkPlain := GroupKey{Driver: 0, M: 10}
	gkFilt := GroupKey{Driver: 1, M: 10, Filter: "2=1"}
	pk := PairKey{A: 0, B: 1, Side: 8, ObjAttr: 2, ObjWant: true}
	return &Requirements{
		Groups: map[GroupKey]*GroupNeed{
			gkPlain: {Key: gkPlain, Driver: 0,
				Bools: []bucketing.BoolCond{obj}, TrackExtremes: true},
			gkFilt: {Key: gkFilt, Driver: 1,
				Filter: []bucketing.BoolCond{obj},
				Bools:  []bucketing.BoolCond{obj}},
		},
		GroupOrder: []GroupKey{gkPlain, gkFilt},
		Pairs: map[PairKey]*PairNeed{
			pk: {Key: pk, A: 0, B: 1, Side: 8, Obj: obj},
		},
		PairOrder: []PairKey{pk},
		Gen:       gen,
	}
}

var deltaTestDefaults = Defaults{Buckets: 10, SampleFactor: 40, Seed: 7}

// TestRunDeltaFoldsMatchColdRecount pins the heart of the incremental
// path: appending a within-budget tail and folding equals recounting
// the grown relation from scratch over the SAME boundaries, field for
// field.
func TestRunDeltaFoldsMatchColdRecount(t *testing.T) {
	const oldN, newN = 2000, 2100
	rel := deltaTestRel(t, oldN)
	cache := NewCache(-1)
	d := deltaTestDefaults
	if _, err := Run(rel, d, cache, deltaTestReq(0)); err != nil {
		t.Fatal(err)
	}

	appendDeltaRows(rel, oldN, newN)
	ds, err := RunDelta(context.Background(), rel, d, cache, oldN, newN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Resamples != 0 {
		t.Fatalf("within-budget append re-sampled %d boundary sets", ds.Resamples)
	}
	if ds.EntriesFolded != 3 || ds.EntriesDropped != 0 {
		t.Fatalf("folded %d dropped %d, want 3 folded 0 dropped", ds.EntriesFolded, ds.EntriesDropped)
	}
	if ds.TailScans != 1 || ds.RowsScanned != newN-oldN {
		t.Fatalf("tail scan stats %d/%d, want 1/%d", ds.TailScans, ds.RowsScanned, newN-oldN)
	}

	// Cold control: fresh cache pinned to the SAME boundaries, counting
	// the full grown relation in one scan.
	control := NewCache(-1)
	control.CopyBoundsFrom(cache)
	req := deltaTestReq(1)
	if _, err := Run(rel, d, control, req); err != nil {
		t.Fatal(err)
	}
	for _, gk := range req.GroupOrder {
		folded, ok := cache.Get1D(gk)
		if !ok {
			t.Fatalf("group %+v missing after delta", gk)
		}
		cold, ok := control.Get1D(gk)
		if !ok {
			t.Fatalf("group %+v missing from control", gk)
		}
		if !reflect.DeepEqual(folded, cold) {
			t.Errorf("group %+v: folded statistic differs from cold recount:\nfolded: %+v\ncold:   %+v", gk, folded, cold)
		}
	}
	for _, pk := range req.PairOrder {
		folded, ok := cache.Get2D(pk)
		if !ok {
			t.Fatalf("pair %+v missing after delta", pk)
		}
		cold, ok := control.Get2D(pk)
		if !ok {
			t.Fatalf("pair %+v missing from control", pk)
		}
		fu, fv, _ := folded.Grid.Flat()
		cu, cv, _ := cold.Grid.Flat()
		if !reflect.DeepEqual(fu, cu) || !reflect.DeepEqual(fv, cv) {
			t.Errorf("pair %+v: folded grid differs from cold recount", pk)
		}
		if folded.N != cold.N || folded.Hits != cold.Hits {
			t.Errorf("pair %+v: N/Hits %d/%d vs cold %d/%d", pk, folded.N, folded.Hits, cold.N, cold.Hits)
		}
		if !reflect.DeepEqual(folded.MinA, cold.MinA) || !reflect.DeepEqual(folded.MaxA, cold.MaxA) ||
			!reflect.DeepEqual(folded.MinB, cold.MinB) || !reflect.DeepEqual(folded.MaxB, cold.MaxB) {
			t.Errorf("pair %+v: folded extremes differ from cold recount", pk)
		}
	}

	// The folded entries are current-generation: a batch at gen 1 is
	// fully covered and scans nothing.
	counting := &relation.CountingRelation{R: rel}
	if _, err := Run(counting, d, cache, deltaTestReq(1)); err != nil {
		t.Fatal(err)
	}
	if counting.Scans != 0 {
		t.Errorf("post-delta batch ran %d scans, want 0", counting.Scans)
	}
}

// TestRunDeltaScansTailOnly pins the O(Δ) claim mechanically: the
// refresh must never read a row below oldN.
func TestRunDeltaScansTailOnly(t *testing.T) {
	const oldN, newN = 2000, 2050
	rel := deltaTestRel(t, oldN)
	cache := NewCache(-1)
	d := deltaTestDefaults
	if _, err := Run(rel, d, cache, deltaTestReq(0)); err != nil {
		t.Fatal(err)
	}
	appendDeltaRows(rel, oldN, newN)
	counting := &relation.RangeCountingRelation{R: rel}
	ds, err := RunDelta(context.Background(), counting, d, cache, oldN, newN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.EntriesFolded != 3 {
		t.Fatalf("folded %d entries, want 3", ds.EntriesFolded)
	}
	if counting.Scans == 0 {
		t.Fatalf("no scans recorded")
	}
	if min := counting.MinScanned(); min < oldN {
		t.Errorf("delta refresh read row %d, below the old count %d: not O(Δ)", min, oldN)
	}
	if counting.Rows != int64(newN-oldN) {
		t.Errorf("delta refresh delivered %d rows, want exactly the %d-row tail", counting.Rows, newN-oldN)
	}
}

// TestRunDeltaResamplesOverBudget pins the Section 3.4 budget: a large
// append re-samples boundaries over the full relation — bit-identical
// to a cold session's — and drops the entries counted over the stale
// cuts.
func TestRunDeltaResamplesOverBudget(t *testing.T) {
	const oldN, newN = 500, 1000
	rel := deltaTestRel(t, oldN)
	cache := NewCache(-1)
	d := deltaTestDefaults
	if _, err := Run(rel, d, cache, deltaTestReq(0)); err != nil {
		t.Fatal(err)
	}
	appendDeltaRows(rel, oldN, newN)
	ds, err := RunDelta(context.Background(), rel, d, cache, oldN, newN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Resamples == 0 {
		t.Fatalf("50%% append did not re-sample (budget %.3f)", resampleBudget(d.SampleFactor))
	}
	if ds.EntriesFolded != 0 || ds.EntriesDropped != 3 {
		t.Fatalf("folded %d dropped %d, want 0 folded 3 dropped", ds.EntriesFolded, ds.EntriesDropped)
	}
	// The re-sampled boundaries must equal what a cold session over the
	// grown relation samples: same seed, same per-attribute RNG streams.
	control := NewCache(-1)
	if _, err := Run(rel, d, control, deltaTestReq(1)); err != nil {
		t.Fatal(err)
	}
	for _, bk := range []BoundKey{{Attr: 0, M: 10}, {Attr: 1, M: 10}, {Attr: 0, M: 8}, {Attr: 1, M: 8}} {
		got, ok := cache.GetBounds(bk)
		if !ok {
			t.Fatalf("boundaries %+v missing after resample", bk)
		}
		want, ok := control.GetBounds(bk)
		if !ok {
			t.Fatalf("boundaries %+v missing from control", bk)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("re-sampled boundaries %+v differ from a cold session's", bk)
		}
	}
}

// TestRunDeltaRepeatedAppendsAccumulate pins that the budget fraction
// is measured against each boundary set's SAMPLE-TIME row count, so
// many small appends eventually trigger the re-sample a single
// same-size append would.
func TestRunDeltaRepeatedAppendsAccumulate(t *testing.T) {
	const oldN = 1000
	rel := deltaTestRel(t, oldN)
	cache := NewCache(-1)
	d := deltaTestDefaults
	if _, err := Run(rel, d, cache, deltaTestReq(0)); err != nil {
		t.Fatal(err)
	}
	n := oldN
	var gen int64
	resampled := false
	for i := 0; i < 20; i++ {
		next := n + 10
		appendDeltaRows(rel, n, next)
		gen++
		ds, err := RunDelta(context.Background(), rel, d, cache, n, next, gen)
		if err != nil {
			t.Fatal(err)
		}
		n = next
		if ds.Resamples > 0 {
			resampled = true
			frac := float64(n-oldN) / float64(n)
			if frac <= resampleBudget(d.SampleFactor) {
				t.Errorf("re-sampled at accumulated fraction %.3f, below budget %.3f", frac, resampleBudget(d.SampleFactor))
			}
			break
		}
	}
	// 200 appended over 1200 = 0.167 > 0.079: must have tripped.
	if !resampled {
		t.Errorf("20 small appends never re-sampled despite accumulated fraction %.3f > budget %.3f",
			float64(n-oldN)/float64(n), resampleBudget(d.SampleFactor))
	}
}

// TestRunDeltaInvalidatesWithoutRangeScans pins the fallback: a
// relation that cannot address its tail drops the cache instead of
// silently serving stale statistics.
func TestRunDeltaInvalidatesWithoutRangeScans(t *testing.T) {
	const oldN, newN = 500, 510
	rel := deltaTestRel(t, oldN)
	cache := NewCache(-1)
	d := deltaTestDefaults
	if _, err := Run(rel, d, cache, deltaTestReq(0)); err != nil {
		t.Fatal(err)
	}
	appendDeltaRows(rel, oldN, newN)
	wrapped := &relation.CountingRelation{R: rel} // hides ScanRange
	ds, err := RunDelta(context.Background(), wrapped, d, cache, oldN, newN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Invalidated {
		t.Fatalf("non-range-scanner refresh did not invalidate")
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("cache still holds %d entries after fallback invalidation", st.Entries)
	}
}

// TestStaleGenerationPartialNeverMerges pins the generation guard end
// to end: a statistic computed at an old generation can neither merge
// into nor replace an entry the delta executor already advanced, and a
// stale-generation batch never treats the advanced entry as covering.
func TestStaleGenerationPartialNeverMerges(t *testing.T) {
	cache := NewCache(-1)
	gk := GroupKey{Driver: 0, M: 4}
	mk := func(gen int64, u0 int) *Stats1D {
		return &Stats1D{M: 4, N: u0, Total: u0, Gen: gen,
			U: []int{u0, 0, 0, 0},
			V: map[bucketing.BoolCond][]int{}, Sum: map[int][]float64{}}
	}
	cur := cache.Put1D(gk, mk(2, 100))
	if got := cache.Put1D(gk, mk(1, 7)); got != cur {
		t.Errorf("stale partial replaced or merged into the advanced entry")
	}
	if have, _ := cache.Get1D(gk); have.Gen != 2 || have.U[0] != 100 {
		t.Errorf("cache entry corrupted by stale put: %+v", have)
	}
	if got := cache.Put1D(gk, mk(3, 101)); got.Gen != 3 || got.U[0] != 101 {
		t.Errorf("newer-generation statistic did not replace: %+v", got)
	}
}
