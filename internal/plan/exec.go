package plan

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"optrule/internal/bucketing"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// AttrRNG derives the deterministic random stream for one numeric
// attribute's sampling pass. EVERY boundary build — fused, cached, or
// legacy per-attribute — must draw from this stream: sessions, one-shot
// wrappers, and the pre-refactor pipelines stay boundary-identical
// (and therefore rule-identical) only because they all do.
func AttrRNG(seed int64, attr int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(attr)*1e6 + 17))
}

// Run materializes every statistic in req, reading the relation at
// most twice: one fused sampling scan builds every missing boundary
// set, one fused counting scan fills every missing count group and
// pair grid. Statistics already covered by cache cost nothing. The
// returned StatsSet is the batch's private working set — extraction
// reads it without touching the cache again, so concurrent eviction
// cannot invalidate an in-flight batch.
func Run(rel relation.Relation, d Defaults, cache Cache, req *Requirements) (*StatsSet, error) {
	set := newStatsSet()

	// Phase 1: coverage. Split the requirements into cache hits and
	// misses; only the misses will scan.
	var groups []*GroupNeed
	for _, gk := range req.GroupOrder {
		need := req.Groups[gk]
		if have, ok := cache.Get1D(gk); ok && have.Covers(need) {
			set.Groups[gk] = have
			continue
		}
		groups = append(groups, need)
	}
	var pairs []*PairNeed
	for _, pk := range req.PairOrder {
		if have, ok := cache.Get2D(pk); ok {
			set.Pairs[pk] = have
			continue
		}
		pairs = append(pairs, req.Pairs[pk])
	}

	// Phase 2: boundaries. Scheduled groups need theirs to count with;
	// pairs need BOTH axes' boundaries even on a grid cache hit, because
	// 2-D extraction translates column buckets back to value ranges. A
	// covered 1-D group, by contrast, needs no boundaries at all — its
	// extraction runs on counts alone — so an evicted boundary entry
	// must not cost a cache-served query a sampling scan.
	var boundOrder []BoundKey
	wantBound := func(k BoundKey) {
		if _, ok := set.Bounds[k]; ok {
			return
		}
		if b, ok := cache.GetBounds(k); ok {
			set.Bounds[k] = b
			return
		}
		set.Bounds[k] = bucketing.Boundaries{} // placeholder: scheduled
		boundOrder = append(boundOrder, k)
	}
	for _, need := range groups {
		wantBound(BoundKey{Attr: need.Driver, M: need.Key.M, Exact: need.Key.Exact})
	}
	for _, pk := range req.PairOrder {
		wantBound(BoundKey{Attr: pk.A, M: pk.Side})
		wantBound(BoundKey{Attr: pk.B, M: pk.Side})
	}
	if len(boundOrder) > 0 {
		specs := make([]bucketing.BoundarySpec, len(boundOrder))
		rngs := make([]*rand.Rand, len(boundOrder))
		for i, bk := range boundOrder {
			exact := 0
			if bk.Exact {
				exact = d.ExactDomainLimit
			}
			specs[i] = bucketing.BoundarySpec{Attr: bk.Attr, M: bk.M,
				SampleFactor: d.SampleFactor, ExactDomainLimit: exact}
			rngs[i] = AttrRNG(d.Seed, bk.Attr)
		}
		bounds, err := bucketing.MultiSampledBoundarySpecs(rel, specs, rngs)
		if err != nil {
			return nil, fmt.Errorf("plan: bucketing: %w", err)
		}
		for i, bk := range boundOrder {
			set.Bounds[bk] = bounds[i]
			cache.PutBounds(bk, bounds[i])
		}
	}

	// Phase 3: one fused counting scan for every miss.
	if len(groups) == 0 && len(pairs) == 0 {
		return set, nil // fully served from cache: zero scans
	}
	if err := countScan(rel, d, set, groups, pairs); err != nil {
		return nil, err
	}
	// Publish through the cache, which merges fresh rows into any
	// concurrently created entries; the merged entry is what the batch
	// binds to.
	for _, need := range groups {
		set.Groups[need.Key] = cache.Put1D(need.Key, set.Groups[need.Key])
	}
	for _, need := range pairs {
		set.Pairs[need.Key] = cache.Put2D(need.Key, set.Pairs[need.Key])
	}
	return set, nil
}

// scanParallelism picks the counting scan's segment count. 1-D counting
// parallelism stays opt-in (Config.PEs), matching the one-shot
// pipelines; a pure pair-grid scan parallelizes by default because its
// merge is exact. Groups accumulating float target sums force a serial
// scan so totals are bit-reproducible regardless of segmentation (the
// average-operator queries have always accumulated serially).
func scanParallelism(rel relation.Relation, d Defaults, groups []*GroupNeed, pairs []*PairNeed) int {
	for _, g := range groups {
		if len(g.Targets) > 0 {
			return 1
		}
	}
	pes := d.PEs
	if pes == 0 && len(groups) == 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	if pes <= 1 {
		return 1
	}
	if _, ok := rel.(relation.RangeScanner); !ok {
		return 1
	}
	if n := rel.NumTuples(); pes > n {
		pes = n
	}
	return pes
}

// countScan runs the fused counting scan for the scheduled groups and
// pairs and stores the results in set.
func countScan(rel relation.Relation, d Defaults, set *StatsSet, groups []*GroupNeed, pairs []*PairNeed) error {
	pes := scanParallelism(rel, d, groups, pairs)

	// Fast path: a homogeneous all-1-D schedule (same filter, rows, and
	// extremes for every group — the MineAll shape, and any single-group
	// batch) runs on the register-optimized fused kernel.
	if len(pairs) == 0 && homogeneous(groups) {
		return countGroupsFused(rel, set, groups, pes)
	}
	return countGeneral(rel, set, groups, pairs, pes)
}

// homogeneous reports whether every group wants the same tally shape,
// over distinct drivers, so bucketing.MultiCount can serve them all.
func homogeneous(groups []*GroupNeed) bool {
	if len(groups) == 0 {
		return false
	}
	first := groups[0]
	seen := map[int]bool{}
	for _, g := range groups {
		if seen[g.Driver] {
			return false
		}
		seen[g.Driver] = true
		if g.Key.Filter != first.Key.Filter || g.TrackExtremes != first.TrackExtremes {
			return false
		}
		if !sameBools(g.Bools, first.Bools) || !sameInts(g.Targets, first.Targets) {
			return false
		}
	}
	return true
}

func sameBools(a, b []bucketing.BoolCond) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boundsOf fetches a group's boundaries from the working set.
func (s *StatsSet) boundsOf(k BoundKey) (bucketing.Boundaries, error) {
	b, ok := s.Bounds[k]
	if !ok {
		return b, fmt.Errorf("plan: boundaries %+v missing from working set", k)
	}
	return b, nil
}

// countGroupsFused is the homogeneous fast path over
// bucketing.MultiCount / ParallelMultiCount.
func countGroupsFused(rel relation.Relation, set *StatsSet, groups []*GroupNeed, pes int) error {
	drivers := make([]int, len(groups))
	bounds := make([]bucketing.Boundaries, len(groups))
	for i, g := range groups {
		drivers[i] = g.Driver
		b, err := set.boundsOf(BoundKey{Attr: g.Driver, M: g.Key.M, Exact: g.Key.Exact})
		if err != nil {
			return err
		}
		bounds[i] = b
	}
	opts := bucketing.Options{
		Bools:         groups[0].Bools,
		Targets:       groups[0].Targets,
		Filter:        groups[0].Filter,
		TrackExtremes: groups[0].TrackExtremes,
	}
	var cs []*bucketing.Counts
	var err error
	if pes > 1 {
		rs := rel.(relation.RangeScanner) // guaranteed by scanParallelism
		cs, err = bucketing.ParallelMultiCount(rs, drivers, bounds, opts, pes)
	} else {
		cs, err = bucketing.MultiCount(rel, drivers, bounds, opts)
	}
	if err != nil {
		return fmt.Errorf("plan: counting: %w", err)
	}
	for i, g := range groups {
		set.Groups[g.Key] = statsFromCounts(cs[i], g)
	}
	return nil
}

// statsFromCounts reshapes a Counts into the cached Stats1D form.
func statsFromCounts(c *bucketing.Counts, g *GroupNeed) *Stats1D {
	s := &Stats1D{
		M: c.M, N: c.N, Total: c.Total, NaNs: c.NaNs,
		U:      c.U,
		MinVal: c.MinVal, MaxVal: c.MaxVal,
		V:   map[bucketing.BoolCond][]int{},
		Sum: map[int][]float64{},
	}
	for k, bc := range g.Bools {
		s.V[bc] = c.V[k]
	}
	for k, t := range g.Targets {
		s.Sum[t] = c.Sum[k]
	}
	return s
}

// ---------------------------------------------------------------------
// General fused kernel: heterogeneous 1-D groups and 2-D pair grids in
// one scan. Each tuple's bucket is located ONCE per distinct
// (attribute, resolution) and shared by every consumer; per-filter row
// masks are computed once per batch.

// execState is one worker's private tally state.
type execState struct {
	numPos  map[int]int // attr -> position in cols.Numeric
	boolPos map[int]int // attr -> position in cols.Bool

	locKeys []BoundKey
	locCol  []int // column position per locate task
	locB    []bucketing.Boundaries
	idx     [][]int32 // per locate task, per batch row

	filters [][]bucketing.BoolCond // distinct filters (canonical key order)
	masks   [][]bool

	groups []*groupState
	pairs  []*pairState
}

type groupState struct {
	need    *GroupNeed
	col     int // driver column position
	loc     int // locate task index
	maskIdx int // distinct filter index, -1 when unfiltered
	m       int

	total, nans int
	u           []int
	v           [][]int     // need.Bools order
	sum         [][]float64 // need.Targets order
	minv, maxv  []float64
	boolCol     []int
	boolWant    []bool
	targetCol   []int
}

type pairState struct {
	need       *PairNeed
	locA, locB int
	colA, colB int
	objCol     int
	want       bool

	grid       *region.Grid
	gu         []int
	gv         []float64
	cols       int
	minA, maxA []float64
	minB, maxB []float64
}

// layout computes the union column set and position maps.
func execLayout(groups []*GroupNeed, pairs []*PairNeed) (relation.ColumnSet, map[int]int, map[int]int) {
	var cols relation.ColumnSet
	numPos := map[int]int{}
	boolPos := map[int]int{}
	num := func(attr int) {
		if _, ok := numPos[attr]; !ok {
			numPos[attr] = len(cols.Numeric)
			cols.Numeric = append(cols.Numeric, attr)
		}
	}
	boo := func(attr int) {
		if _, ok := boolPos[attr]; !ok {
			boolPos[attr] = len(cols.Bool)
			cols.Bool = append(cols.Bool, attr)
		}
	}
	for _, g := range groups {
		num(g.Driver)
		for _, t := range g.Targets {
			num(t)
		}
		for _, bc := range g.Bools {
			boo(bc.Attr)
		}
		for _, bc := range g.Filter {
			boo(bc.Attr)
		}
	}
	for _, p := range pairs {
		num(p.A)
		num(p.B)
		boo(p.Obj.Attr)
	}
	return cols, numPos, boolPos
}

// newExecState builds one worker's tally state.
func newExecState(set *StatsSet, groups []*GroupNeed, pairs []*PairNeed,
	numPos, boolPos map[int]int) (*execState, error) {
	st := &execState{numPos: numPos, boolPos: boolPos}
	locOf := map[BoundKey]int{}
	locate := func(k BoundKey) (int, error) {
		if i, ok := locOf[k]; ok {
			return i, nil
		}
		b, err := set.boundsOf(k)
		if err != nil {
			return 0, err
		}
		i := len(st.locKeys)
		locOf[k] = i
		st.locKeys = append(st.locKeys, k)
		st.locCol = append(st.locCol, numPos[k.Attr])
		st.locB = append(st.locB, b)
		st.idx = append(st.idx, nil)
		return i, nil
	}
	maskOf := map[string]int{}
	maskIdx := func(filter []bucketing.BoolCond, key string) int {
		if key == "" {
			return -1
		}
		if i, ok := maskOf[key]; ok {
			return i
		}
		i := len(st.filters)
		maskOf[key] = i
		st.filters = append(st.filters, filter)
		st.masks = append(st.masks, nil)
		return i
	}
	for _, g := range groups {
		loc, err := locate(BoundKey{Attr: g.Driver, M: g.Key.M, Exact: g.Key.Exact})
		if err != nil {
			return nil, err
		}
		m := st.locB[loc].NumBuckets()
		gs := &groupState{
			need: g, col: numPos[g.Driver], loc: loc,
			maskIdx: maskIdx(g.Filter, g.Key.Filter), m: m,
			u: make([]int, m),
		}
		for _, bc := range g.Bools {
			gs.v = append(gs.v, make([]int, m))
			gs.boolCol = append(gs.boolCol, boolPos[bc.Attr])
			gs.boolWant = append(gs.boolWant, bc.Want)
		}
		for _, t := range g.Targets {
			gs.sum = append(gs.sum, make([]float64, m))
			gs.targetCol = append(gs.targetCol, numPos[t])
		}
		if g.TrackExtremes {
			gs.minv = make([]float64, m)
			gs.maxv = make([]float64, m)
			for i := range gs.minv {
				gs.minv[i] = math.Inf(1)
				gs.maxv[i] = math.Inf(-1)
			}
		}
		st.groups = append(st.groups, gs)
	}
	for _, p := range pairs {
		locA, err := locate(BoundKey{Attr: p.A, M: p.Side})
		if err != nil {
			return nil, err
		}
		locB, err := locate(BoundKey{Attr: p.B, M: p.Side})
		if err != nil {
			return nil, err
		}
		rows := st.locB[locA].NumBuckets()
		colsN := st.locB[locB].NumBuckets()
		g, err := region.NewGrid(rows, colsN)
		if err != nil {
			return nil, err
		}
		gu, gv, ok := g.Flat()
		if !ok {
			return nil, fmt.Errorf("plan: grid misses its flat backing")
		}
		ps := &pairState{
			need: p, locA: locA, locB: locB,
			colA: numPos[p.A], colB: numPos[p.B],
			objCol: boolPos[p.Obj.Attr], want: p.Obj.Want,
			grid: g, gu: gu, gv: gv, cols: g.Cols(),
			minA: make([]float64, rows), maxA: make([]float64, rows),
			minB: make([]float64, colsN), maxB: make([]float64, colsN),
		}
		for i := range ps.minA {
			ps.minA[i], ps.maxA[i] = math.Inf(1), math.Inf(-1)
		}
		for i := range ps.minB {
			ps.minB[i], ps.maxB[i] = math.Inf(1), math.Inf(-1)
		}
		st.pairs = append(st.pairs, ps)
	}
	return st, nil
}

// countBatch tallies one batch into every group and pair.
func (st *execState) countBatch(b *relation.Batch) {
	n := b.Len
	// Bucket indices once per (attribute, resolution): every group and
	// pair sharing the boundary set shares the locate pass.
	for t := range st.locKeys {
		if cap(st.idx[t]) < n {
			st.idx[t] = make([]int32, n)
		}
		st.locB[t].LocateBatch(b.Numeric[st.locCol[t]][:n], st.idx[t][:n])
	}
	// Row masks once per distinct filter.
	for f := range st.filters {
		if cap(st.masks[f]) < n {
			st.masks[f] = make([]bool, n)
		}
		mask := st.masks[f][:n]
		for row := range mask {
			mask[row] = true
		}
		for _, bc := range st.filters[f] {
			col := b.Bool[st.boolPos[bc.Attr]]
			want := bc.Want
			for row := 0; row < n; row++ {
				if col[row] != want {
					mask[row] = false
				}
			}
		}
	}
	for _, gs := range st.groups {
		gs.total += n
		idx := st.idx[gs.loc][:n]
		col := b.Numeric[gs.col]
		var mask []bool
		if gs.maskIdx >= 0 {
			mask = st.masks[gs.maskIdx][:n]
		}
		for row := 0; row < n; row++ {
			if mask != nil && !mask[row] {
				continue
			}
			i := int(idx[row])
			if i < 0 { // NaN driver: belongs to no bucket
				gs.nans++
				continue
			}
			gs.u[i]++
			if gs.minv != nil {
				x := col[row]
				if x < gs.minv[i] {
					gs.minv[i] = x
				}
				if x > gs.maxv[i] {
					gs.maxv[i] = x
				}
			}
			for k := range gs.v {
				e := 0
				if b.Bool[gs.boolCol[k]][row] == gs.boolWant[k] {
					e = 1
				}
				gs.v[k][i] += e
			}
			for k := range gs.sum {
				gs.sum[k][i] += b.Numeric[gs.targetCol[k]][row]
			}
		}
	}
	for _, ps := range st.pairs {
		ia := st.idx[ps.locA][:n]
		ib := st.idx[ps.locB][:n]
		colA := b.Numeric[ps.colA]
		colB := b.Numeric[ps.colB]
		obj := b.Bool[ps.objCol]
		gu, gv, cols := ps.gu, ps.gv, ps.cols
		minA, maxA := ps.minA, ps.maxA
		minB, maxB := ps.minB, ps.maxB
		want := ps.want
		for row := 0; row < n; row++ {
			ri := int(ia[row])
			if ri < 0 {
				continue
			}
			rj := int(ib[row])
			if rj < 0 {
				continue
			}
			idx := ri*cols + rj
			gu[idx]++
			// Flagless objective tally (as in the 1-D counting kernel):
			// the objective bit is ~50% either way, so a conditional
			// increment would mispredict constantly.
			e := 0.0
			if obj[row] == want {
				e = 1
			}
			gv[idx] += e
			a := colA[row]
			if a < minA[ri] {
				minA[ri] = a
			}
			if a > maxA[ri] {
				maxA[ri] = a
			}
			bv := colB[row]
			if bv < minB[rj] {
				minB[rj] = bv
			}
			if bv > maxB[rj] {
				maxB[rj] = bv
			}
		}
	}
}

// merge folds other's tallies into st. All statistics are integer
// counts or extremes (float sums force a serial scan), so the merged
// state matches a serial scan exactly regardless of segmentation.
func (st *execState) merge(other *execState) error {
	for i, gs := range st.groups {
		og := other.groups[i]
		gs.total += og.total
		gs.nans += og.nans
		for j := range gs.u {
			gs.u[j] += og.u[j]
		}
		for k := range gs.v {
			for j := range gs.v[k] {
				gs.v[k][j] += og.v[k][j]
			}
		}
		for k := range gs.sum {
			for j := range gs.sum[k] {
				gs.sum[k][j] += og.sum[k][j]
			}
		}
		if gs.minv != nil {
			for j := range gs.minv {
				if og.minv[j] < gs.minv[j] {
					gs.minv[j] = og.minv[j]
				}
				if og.maxv[j] > gs.maxv[j] {
					gs.maxv[j] = og.maxv[j]
				}
			}
		}
	}
	for i, ps := range st.pairs {
		op := other.pairs[i]
		if err := ps.grid.Merge(op.grid); err != nil {
			return err
		}
		for j := range ps.minA {
			if op.minA[j] < ps.minA[j] {
				ps.minA[j] = op.minA[j]
			}
			if op.maxA[j] > ps.maxA[j] {
				ps.maxA[j] = op.maxA[j]
			}
		}
		for j := range ps.minB {
			if op.minB[j] < ps.minB[j] {
				ps.minB[j] = op.minB[j]
			}
			if op.maxB[j] > ps.maxB[j] {
				ps.maxB[j] = op.maxB[j]
			}
		}
	}
	return nil
}

// publish converts the final tally state into cached statistics.
func (st *execState) publish(set *StatsSet) {
	for _, gs := range st.groups {
		s := &Stats1D{
			M: gs.m, Total: gs.total, NaNs: gs.nans,
			U:      gs.u,
			MinVal: gs.minv, MaxVal: gs.maxv,
			V:   map[bucketing.BoolCond][]int{},
			Sum: map[int][]float64{},
		}
		for _, u := range gs.u {
			s.N += u
		}
		for k, bc := range gs.need.Bools {
			s.V[bc] = gs.v[k]
		}
		for k, t := range gs.need.Targets {
			s.Sum[t] = gs.sum[k]
		}
		set.Groups[gs.need.Key] = s
	}
	for _, ps := range st.pairs {
		set.Pairs[ps.need.Key] = &Stats2D{
			Grid: ps.grid,
			MinA: ps.minA, MaxA: ps.maxA,
			MinB: ps.minB, MaxB: ps.maxB,
			N:    ps.grid.Total(),
			Hits: int(ps.grid.SumV()),
		}
	}
}

// countGeneral runs the general fused counting scan, serial or
// segmented at storage-aligned boundaries.
func countGeneral(rel relation.Relation, set *StatsSet, groups []*GroupNeed, pairs []*PairNeed, pes int) error {
	cols, numPos, boolPos := execLayout(groups, pairs)
	if pes <= 1 {
		st, err := newExecState(set, groups, pairs, numPos, boolPos)
		if err != nil {
			return err
		}
		if err := rel.Scan(cols, func(b *relation.Batch) error {
			st.countBatch(b)
			return nil
		}); err != nil {
			return fmt.Errorf("plan: counting: %w", err)
		}
		st.publish(set)
		return nil
	}
	rs := rel.(relation.RangeScanner) // guaranteed by scanParallelism
	segs := relation.AlignedSegments(rel, rel.NumTuples(), pes)
	states := make([]*execState, pes)
	errs := make(chan error, pes)
	for p := 0; p < pes; p++ {
		go func(p int) {
			local, err := newExecState(set, groups, pairs, numPos, boolPos)
			if err != nil {
				errs <- err
				return
			}
			states[p] = local
			errs <- rs.ScanRange(segs[p], segs[p+1], cols, func(b *relation.Batch) error {
				local.countBatch(b)
				return nil
			})
		}(p)
	}
	var firstErr error
	for p := 0; p < pes; p++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("plan: counting: %w", firstErr)
	}
	total := states[0]
	for _, part := range states[1:] {
		if err := total.merge(part); err != nil {
			return err
		}
	}
	total.publish(set)
	return nil
}
