package plan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"optrule/internal/bucketing"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// AttrRNG derives the deterministic random stream for one numeric
// attribute's sampling pass. EVERY boundary build — fused, cached, or
// legacy per-attribute — must draw from this stream: sessions, one-shot
// wrappers, and the pre-refactor pipelines stay boundary-identical
// (and therefore rule-identical) only because they all do.
func AttrRNG(seed int64, attr int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(attr)*1e6 + 17))
}

// Run materializes every statistic in req, reading the relation at
// most twice: one fused sampling scan builds every missing boundary
// set, one fused counting scan fills every missing count group and
// pair grid. Statistics already covered by cache cost nothing. The
// returned StatsSet is the batch's private working set — extraction
// reads it without touching the cache again, so concurrent eviction
// cannot invalidate an in-flight batch.
func Run(rel relation.Relation, d Defaults, cache Cache, req *Requirements) (*StatsSet, error) {
	return RunContext(context.Background(), rel, d, cache, req)
}

// RunContext is Run under a context: cancellation and deadlines are
// observed between phases, between batches of the counting scan, and
// throughout the scatter-gather coordinator (whose per-worker timeouts
// derive from it). The sampling scan itself runs to completion — it is
// bounded by the sample size, not the relation size.
func RunContext(ctx context.Context, rel relation.Relation, d Defaults, cache Cache, req *Requirements) (*StatsSet, error) {
	set := newStatsSet()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1: coverage. Split the requirements into cache hits and
	// misses; only the misses will scan. An entry from a different cache
	// generation never counts as a hit — it summarizes a different row
	// set than the batch executes against (the delta executor normally
	// folds or drops every entry on refresh, so this guard only fires on
	// exotic cache implementations or interleavings, but correctness must
	// not depend on that).
	var groups []*GroupNeed
	for _, gk := range req.GroupOrder {
		need := req.Groups[gk]
		if have, ok := cache.Get1D(gk); ok && have.Gen == req.Gen && have.Covers(need) {
			set.Groups[gk] = have
			continue
		}
		groups = append(groups, need)
	}
	var pairs []*PairNeed
	for _, pk := range req.PairOrder {
		if have, ok := cache.Get2D(pk); ok && have.Gen == req.Gen {
			set.Pairs[pk] = have
			continue
		}
		pairs = append(pairs, req.Pairs[pk])
	}

	// Phase 2: boundaries. Scheduled groups need theirs to count with;
	// pairs need BOTH axes' boundaries even on a grid cache hit, because
	// 2-D extraction translates column buckets back to value ranges. A
	// covered 1-D group, by contrast, needs no boundaries at all — its
	// extraction runs on counts alone — so an evicted boundary entry
	// must not cost a cache-served query a sampling scan.
	var boundOrder []BoundKey
	wantBound := func(k BoundKey) {
		if _, ok := set.Bounds[k]; ok {
			return
		}
		if b, ok := cache.GetBounds(k); ok {
			set.Bounds[k] = b
			return
		}
		set.Bounds[k] = bucketing.Boundaries{} // placeholder: scheduled
		boundOrder = append(boundOrder, k)
	}
	for _, need := range groups {
		wantBound(BoundKey{Attr: need.Driver, M: need.Key.M, Exact: need.Key.Exact})
	}
	for _, pk := range req.PairOrder {
		wantBound(BoundKey{Attr: pk.A, M: pk.Side})
		wantBound(BoundKey{Attr: pk.B, M: pk.Side})
	}
	if len(boundOrder) > 0 {
		specs := make([]bucketing.BoundarySpec, len(boundOrder))
		rngs := make([]*rand.Rand, len(boundOrder))
		for i, bk := range boundOrder {
			exact := 0
			if bk.Exact {
				exact = d.ExactDomainLimit
			}
			specs[i] = bucketing.BoundarySpec{Attr: bk.Attr, M: bk.M,
				SampleFactor: d.SampleFactor, ExactDomainLimit: exact}
			rngs[i] = AttrRNG(d.Seed, bk.Attr)
		}
		bounds, err := bucketing.MultiSampledBoundarySpecs(rel, specs, rngs)
		if err != nil {
			return nil, fmt.Errorf("plan: bucketing: %w", err)
		}
		for i, bk := range boundOrder {
			set.Bounds[bk] = bounds[i]
			cache.PutBounds(bk, bounds[i], rel.NumTuples())
		}
	}

	// Phase 3: one fused counting scan for every miss.
	if len(groups) == 0 && len(pairs) == 0 {
		return set, nil // fully served from cache: zero scans
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := countScan(ctx, rel, d, set, groups, pairs); err != nil {
		return nil, err
	}
	// Publish through the cache, which merges fresh rows into any
	// concurrently created entries; the merged entry is what the batch
	// binds to. Fresh statistics carry the batch's cache generation so a
	// partial computed before a concurrent append can never be merged
	// into an entry the delta executor already advanced.
	for _, need := range groups {
		set.Groups[need.Key].Gen = req.Gen
		set.Groups[need.Key] = cache.Put1D(need.Key, set.Groups[need.Key])
	}
	for _, need := range pairs {
		set.Pairs[need.Key].Gen = req.Gen
		set.Pairs[need.Key] = cache.Put2D(need.Key, set.Pairs[need.Key])
	}
	return set, nil
}

// scanParallelism picks the counting scan's segment count. 1-D counting
// parallelism stays opt-in (Config.PEs), matching the one-shot
// pipelines; a pure pair-grid scan parallelizes by default because its
// merge is exact. Groups accumulating float target sums force a serial
// scan so totals are bit-reproducible regardless of segmentation (the
// average-operator queries have always accumulated serially).
func scanParallelism(rel relation.Relation, d Defaults, groups []*GroupNeed, pairs []*PairNeed) int {
	for _, g := range groups {
		if len(g.Targets) > 0 {
			return 1
		}
	}
	pes := d.PEs
	if pes == 0 && len(groups) == 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	if pes <= 1 {
		return 1
	}
	if _, ok := rel.(relation.RangeScanner); !ok {
		return 1
	}
	if n := rel.NumTuples(); pes > n {
		pes = n
	}
	return pes
}

// countScan runs the fused counting scan for the scheduled groups and
// pairs and stores the results in set.
func countScan(ctx context.Context, rel relation.Relation, d Defaults, set *StatsSet, groups []*GroupNeed, pairs []*PairNeed) error {
	// Scatter-gather path: enabled workers, integer-exact schedule. The
	// worker-count-0 default takes the existing executors untouched.
	if useScatter(rel, d, groups) {
		return countScatter(ctx, rel, d, set, groups, pairs)
	}
	pes := scanParallelism(rel, d, groups, pairs)

	// Fast path: a homogeneous all-1-D schedule (same filter, rows, and
	// extremes for every group — the MineAll shape, and any single-group
	// batch) runs on the register-optimized fused kernel.
	if len(pairs) == 0 && homogeneous(groups) {
		return countGroupsFused(rel, set, groups, pes)
	}
	return countGeneral(ctx, rel, set, groups, pairs, pes, d.RefKernel)
}

// homogeneous reports whether every group wants the same tally shape,
// over distinct drivers, so bucketing.MultiCount can serve them all.
func homogeneous(groups []*GroupNeed) bool {
	if len(groups) == 0 {
		return false
	}
	first := groups[0]
	seen := map[int]bool{}
	for _, g := range groups {
		if seen[g.Driver] {
			return false
		}
		seen[g.Driver] = true
		if g.Key.Filter != first.Key.Filter || g.TrackExtremes != first.TrackExtremes {
			return false
		}
		if !sameBools(g.Bools, first.Bools) || !sameInts(g.Targets, first.Targets) {
			return false
		}
	}
	return true
}

func sameBools(a, b []bucketing.BoolCond) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boundsOf fetches a group's boundaries from the working set.
func (s *StatsSet) boundsOf(k BoundKey) (bucketing.Boundaries, error) {
	b, ok := s.Bounds[k]
	if !ok {
		return b, fmt.Errorf("plan: boundaries %+v missing from working set", k)
	}
	return b, nil
}

// countGroupsFused is the homogeneous fast path over
// bucketing.MultiCount / ParallelMultiCount.
func countGroupsFused(rel relation.Relation, set *StatsSet, groups []*GroupNeed, pes int) error {
	drivers := make([]int, len(groups))
	bounds := make([]bucketing.Boundaries, len(groups))
	for i, g := range groups {
		drivers[i] = g.Driver
		b, err := set.boundsOf(BoundKey{Attr: g.Driver, M: g.Key.M, Exact: g.Key.Exact})
		if err != nil {
			return err
		}
		bounds[i] = b
	}
	opts := bucketing.Options{
		Bools:         groups[0].Bools,
		Targets:       groups[0].Targets,
		Filter:        groups[0].Filter,
		TrackExtremes: groups[0].TrackExtremes,
	}
	var cs []*bucketing.Counts
	var err error
	if pes > 1 {
		rs := rel.(relation.RangeScanner) // guaranteed by scanParallelism
		cs, err = bucketing.ParallelMultiCount(rs, drivers, bounds, opts, pes)
	} else {
		cs, err = bucketing.MultiCount(rel, drivers, bounds, opts)
	}
	if err != nil {
		return fmt.Errorf("plan: counting: %w", err)
	}
	for i, g := range groups {
		set.Groups[g.Key] = statsFromCounts(cs[i], g)
	}
	return nil
}

// statsFromCounts reshapes a Counts into the cached Stats1D form.
func statsFromCounts(c *bucketing.Counts, g *GroupNeed) *Stats1D {
	s := &Stats1D{
		M: c.M, N: c.N, Total: c.Total, NaNs: c.NaNs,
		U:      c.U,
		MinVal: c.MinVal, MaxVal: c.MaxVal,
		V:   map[bucketing.BoolCond][]int{},
		Sum: map[int][]float64{},
	}
	for k, bc := range g.Bools {
		s.V[bc] = c.V[k]
	}
	for k, t := range g.Targets {
		s.Sum[t] = c.Sum[k]
	}
	return s
}

// ---------------------------------------------------------------------
// General fused kernel: heterogeneous 1-D groups and 2-D pair grids in
// one scan. Each tuple's bucket is located ONCE per distinct
// (attribute, resolution) and shared by every consumer; per-filter row
// masks are computed once per batch.

// effCombo is one distinct (boundary set, filter) combination's
// effective-index pass: eff[row] is the row's bucket index with
// masked-out and NaN-driver rows redirected to the trash slot m, so
// every group sharing the combination tallies with branch-free
// scatter loops. nans counts the batch's masked-in NaN-driver rows.
type effCombo struct {
	loc     int // locate task index
	maskIdx int // distinct filter index, -1 when unfiltered
	m       int // bucket count; also the trash slot

	eff  []int32
	nans int
}

// execState is one worker's private tally state.
type execState struct {
	numPos  map[int]int // attr -> position in cols.Numeric
	boolPos map[int]int // attr -> position in cols.Bool

	locKeys []BoundKey
	locCol  []int // column position per locate task
	locB    []bucketing.Boundaries
	idx     [][]int32 // per locate task, per batch row

	filters [][]bucketing.BoolCond // distinct filters (canonical key order)
	masks   [][]bool

	combos []*effCombo // distinct (loc, maskIdx) effective-index passes
	useRef bool        // run the reference per-tuple kernel instead

	groups []*groupState
	pairs  []*pairState
}

type groupState struct {
	need    *GroupNeed
	col     int // driver column position
	loc     int // locate task index
	maskIdx int // distinct filter index, -1 when unfiltered
	combo   int // effective-index pass (loc, maskIdx)
	m       int

	// Tally arrays are padded to m+1 slots: slot m is the trash slot
	// the vectorized kernel scatters masked-out and NaN-driver rows
	// into, so its inner loops carry no per-row branch. publish slices
	// the padding back off; merge folds it along with the real slots.
	total, nans int
	u           []int
	v           [][]int     // need.Bools order
	sum         [][]float64 // need.Targets order
	minv, maxv  []float64
	boolCol     []int
	boolWant    []bool
	targetCol   []int
}

type pairState struct {
	need       *PairNeed
	locA, locB int
	colA, colB int
	objCol     int
	want       bool

	// grid is the published result; the kernels tally into pu/pv —
	// padded (cells+1-slot) shadows of its flat backing whose last slot
	// absorbs rows falling outside either bucketing — and publish
	// copies the real cells in. The axis extreme arrays carry one trash
	// slot each for the same reason.
	grid       *region.Grid
	gu         []int
	gv         []float64
	cols       int
	pu         []int
	pv         []float64
	minA, maxA []float64
	minB, maxB []float64

	effCell []int32 // per batch row: flat cell index, or the trash cell
	effA    []int32 // row-bucket index, or its trash slot
	effB    []int32 // column-bucket index, or its trash slot
}

// layout computes the union column set and position maps.
func execLayout(groups []*GroupNeed, pairs []*PairNeed) (relation.ColumnSet, map[int]int, map[int]int) {
	var cols relation.ColumnSet
	numPos := map[int]int{}
	boolPos := map[int]int{}
	num := func(attr int) {
		if _, ok := numPos[attr]; !ok {
			numPos[attr] = len(cols.Numeric)
			cols.Numeric = append(cols.Numeric, attr)
		}
	}
	boo := func(attr int) {
		if _, ok := boolPos[attr]; !ok {
			boolPos[attr] = len(cols.Bool)
			cols.Bool = append(cols.Bool, attr)
		}
	}
	for _, g := range groups {
		num(g.Driver)
		for _, t := range g.Targets {
			num(t)
		}
		for _, bc := range g.Bools {
			boo(bc.Attr)
		}
		for _, bc := range g.Filter {
			boo(bc.Attr)
		}
	}
	for _, p := range pairs {
		num(p.A)
		num(p.B)
		boo(p.Obj.Attr)
	}
	return cols, numPos, boolPos
}

// newExecState builds one worker's tally state. ref selects the
// reference per-tuple kernel over the batch-vectorized one.
func newExecState(set *StatsSet, groups []*GroupNeed, pairs []*PairNeed,
	numPos, boolPos map[int]int, ref bool) (*execState, error) {
	st := &execState{numPos: numPos, boolPos: boolPos, useRef: ref}
	locOf := map[BoundKey]int{}
	locate := func(k BoundKey) (int, error) {
		if i, ok := locOf[k]; ok {
			return i, nil
		}
		b, err := set.boundsOf(k)
		if err != nil {
			return 0, err
		}
		i := len(st.locKeys)
		locOf[k] = i
		st.locKeys = append(st.locKeys, k)
		st.locCol = append(st.locCol, numPos[k.Attr])
		st.locB = append(st.locB, b)
		st.idx = append(st.idx, nil)
		return i, nil
	}
	maskOf := map[string]int{}
	maskIdx := func(filter []bucketing.BoolCond, key string) int {
		if key == "" {
			return -1
		}
		if i, ok := maskOf[key]; ok {
			return i
		}
		i := len(st.filters)
		maskOf[key] = i
		st.filters = append(st.filters, filter)
		st.masks = append(st.masks, nil)
		return i
	}
	comboOf := map[[2]int]int{}
	combo := func(loc, mi, m int) int {
		key := [2]int{loc, mi}
		if i, ok := comboOf[key]; ok {
			return i
		}
		i := len(st.combos)
		comboOf[key] = i
		st.combos = append(st.combos, &effCombo{loc: loc, maskIdx: mi, m: m})
		return i
	}
	for _, g := range groups {
		loc, err := locate(BoundKey{Attr: g.Driver, M: g.Key.M, Exact: g.Key.Exact})
		if err != nil {
			return nil, err
		}
		m := st.locB[loc].NumBuckets()
		mi := maskIdx(g.Filter, g.Key.Filter)
		gs := &groupState{
			need: g, col: numPos[g.Driver], loc: loc,
			maskIdx: mi, combo: combo(loc, mi, m), m: m,
			u: make([]int, m+1),
		}
		for _, bc := range g.Bools {
			gs.v = append(gs.v, make([]int, m+1))
			gs.boolCol = append(gs.boolCol, boolPos[bc.Attr])
			gs.boolWant = append(gs.boolWant, bc.Want)
		}
		for _, t := range g.Targets {
			gs.sum = append(gs.sum, make([]float64, m+1))
			gs.targetCol = append(gs.targetCol, numPos[t])
		}
		if g.TrackExtremes {
			gs.minv = make([]float64, m+1)
			gs.maxv = make([]float64, m+1)
			for i := range gs.minv {
				gs.minv[i] = math.Inf(1)
				gs.maxv[i] = math.Inf(-1)
			}
		}
		st.groups = append(st.groups, gs)
	}
	for _, p := range pairs {
		locA, err := locate(BoundKey{Attr: p.A, M: p.Side})
		if err != nil {
			return nil, err
		}
		locB, err := locate(BoundKey{Attr: p.B, M: p.Side})
		if err != nil {
			return nil, err
		}
		rows := st.locB[locA].NumBuckets()
		colsN := st.locB[locB].NumBuckets()
		g, err := region.NewGrid(rows, colsN)
		if err != nil {
			return nil, err
		}
		gu, gv, ok := g.Flat()
		if !ok {
			return nil, fmt.Errorf("plan: grid misses its flat backing")
		}
		ps := &pairState{
			need: p, locA: locA, locB: locB,
			colA: numPos[p.A], colB: numPos[p.B],
			objCol: boolPos[p.Obj.Attr], want: p.Obj.Want,
			grid: g, gu: gu, gv: gv, cols: g.Cols(),
			pu:   make([]int, rows*colsN+1),
			pv:   make([]float64, rows*colsN+1),
			minA: make([]float64, rows+1), maxA: make([]float64, rows+1),
			minB: make([]float64, colsN+1), maxB: make([]float64, colsN+1),
		}
		for i := range ps.minA {
			ps.minA[i], ps.maxA[i] = math.Inf(1), math.Inf(-1)
		}
		for i := range ps.minB {
			ps.minB[i], ps.maxB[i] = math.Inf(1), math.Inf(-1)
		}
		st.pairs = append(st.pairs, ps)
	}
	return st, nil
}

// countBatch tallies one batch into every group and pair: bucket
// indices are located once per (attribute, resolution), row masks are
// computed once per distinct filter, then either the batch-vectorized
// kernel or the reference per-tuple kernel consumes them. Both kernels
// feed every valid bucket the identical addition sequence in row
// order, so their outputs — float target sums included — are
// bit-identical.
func (st *execState) countBatch(b *relation.Batch) {
	n := b.Len
	// Bucket indices once per (attribute, resolution): every group and
	// pair sharing the boundary set shares the locate pass.
	for t := range st.locKeys {
		if cap(st.idx[t]) < n {
			st.idx[t] = make([]int32, n)
		}
		st.locB[t].LocateBatch(b.Numeric[st.locCol[t]][:n], st.idx[t][:n])
	}
	// Row masks once per distinct filter.
	for f := range st.filters {
		if cap(st.masks[f]) < n {
			st.masks[f] = make([]bool, n)
		}
		mask := st.masks[f][:n]
		for row := range mask {
			mask[row] = true
		}
		for _, bc := range st.filters[f] {
			col := b.Bool[st.boolPos[bc.Attr]]
			want := bc.Want
			for row := 0; row < n; row++ {
				if col[row] != want {
					mask[row] = false
				}
			}
		}
	}
	if st.useRef {
		st.countBatchRef(b)
		return
	}
	st.countBatchVec(b)
}

// countBatchVec is the batch-vectorized kernel. The per-tuple
// branching of the reference kernel — mask check, NaN check, extreme
// tracking, per-objective conditionals — is restructured into columnar
// passes: one effective-index pass per distinct (boundary set, filter)
// combination routes every excluded row to a trash slot, and each
// statistic then runs one tight scatter loop over the whole batch with
// no row-level control flow. Trash-slot garbage (counts, NaN sums,
// extremes of masked rows) never surfaces: publish slices it off.
func (st *execState) countBatchVec(b *relation.Batch) {
	n := b.Len
	for _, c := range st.combos {
		if cap(c.eff) < n {
			c.eff = make([]int32, n)
		}
		eff := c.eff[:n]
		idx := st.idx[c.loc][:n]
		trash := int32(c.m)
		nans := 0
		if c.maskIdx < 0 {
			for row, i := range idx {
				if i < 0 { // NaN driver: belongs to no bucket
					nans++
					i = trash
				}
				eff[row] = i
			}
		} else {
			mask := st.masks[c.maskIdx][:n]
			for row, i := range idx {
				if !mask[row] {
					eff[row] = trash
					continue
				}
				if i < 0 {
					nans++
					i = trash
				}
				eff[row] = i
			}
		}
		c.nans = nans
	}
	for _, gs := range st.groups {
		c := st.combos[gs.combo]
		eff := c.eff[:n]
		gs.total += n
		gs.nans += c.nans
		u := gs.u
		for _, e := range eff {
			u[e]++
		}
		if gs.minv != nil {
			col := b.Numeric[gs.col][:n]
			minv, maxv := gs.minv, gs.maxv
			for row, e := range eff {
				x := col[row]
				if x < minv[e] {
					minv[e] = x
				}
				if x > maxv[e] {
					maxv[e] = x
				}
			}
		}
		for k := range gs.v {
			vk := gs.v[k]
			colb := b.Bool[gs.boolCol[k]][:n]
			want := gs.boolWant[k]
			for row, e := range eff {
				// Flagless increment: the objective bit is ~50% either
				// way, so a conditional add would mispredict constantly.
				d := 0
				if colb[row] == want {
					d = 1
				}
				vk[e] += d
			}
		}
		for k := range gs.sum {
			sk := gs.sum[k]
			colt := b.Numeric[gs.targetCol[k]][:n]
			for row, e := range eff {
				sk[e] += colt[row]
			}
		}
	}
	for _, ps := range st.pairs {
		ia := st.idx[ps.locA][:n]
		ib := st.idx[ps.locB][:n]
		if cap(ps.effCell) < n {
			ps.effCell = make([]int32, n)
			ps.effA = make([]int32, n)
			ps.effB = make([]int32, n)
		}
		effCell := ps.effCell[:n]
		effA := ps.effA[:n]
		effB := ps.effB[:n]
		cols := int32(ps.cols)
		trashCell := int32(len(ps.pu) - 1)
		trashA := int32(len(ps.minA) - 1)
		trashB := int32(len(ps.minB) - 1)
		for row := 0; row < n; row++ {
			ri, rj := ia[row], ib[row]
			if ri < 0 || rj < 0 {
				// A row outside either axis's bucketing contributes to no
				// cell and — matching the reference kernel — to neither
				// axis's extremes.
				effCell[row] = trashCell
				effA[row] = trashA
				effB[row] = trashB
				continue
			}
			effCell[row] = ri*cols + rj
			effA[row] = ri
			effB[row] = rj
		}
		pu, pv := ps.pu, ps.pv
		for _, e := range effCell {
			pu[e]++
		}
		obj := b.Bool[ps.objCol][:n]
		want := ps.want
		for row, e := range effCell {
			x := 0.0
			if obj[row] == want {
				x = 1
			}
			pv[e] += x
		}
		colA := b.Numeric[ps.colA][:n]
		minA, maxA := ps.minA, ps.maxA
		for row, e := range effA {
			a := colA[row]
			if a < minA[e] {
				minA[e] = a
			}
			if a > maxA[e] {
				maxA[e] = a
			}
		}
		colB := b.Numeric[ps.colB][:n]
		minB, maxB := ps.minB, ps.maxB
		for row, e := range effB {
			bv := colB[row]
			if bv < minB[e] {
				minB[e] = bv
			}
			if bv > maxB[e] {
				maxB[e] = bv
			}
		}
	}
}

// countBatchRef is the reference per-tuple kernel: one branchy row
// loop per group and pair, kept both as the differential baseline the
// vectorized kernel is pinned against and as a Defaults.RefKernel
// escape hatch for regression triage. It shares the padded tally
// layout, so merge and publish are kernel-agnostic.
func (st *execState) countBatchRef(b *relation.Batch) {
	n := b.Len
	for _, gs := range st.groups {
		gs.total += n
		idx := st.idx[gs.loc][:n]
		col := b.Numeric[gs.col]
		var mask []bool
		if gs.maskIdx >= 0 {
			mask = st.masks[gs.maskIdx][:n]
		}
		for row := 0; row < n; row++ {
			if mask != nil && !mask[row] {
				continue
			}
			i := int(idx[row])
			if i < 0 { // NaN driver: belongs to no bucket
				gs.nans++
				continue
			}
			gs.u[i]++
			if gs.minv != nil {
				x := col[row]
				if x < gs.minv[i] {
					gs.minv[i] = x
				}
				if x > gs.maxv[i] {
					gs.maxv[i] = x
				}
			}
			for k := range gs.v {
				e := 0
				if b.Bool[gs.boolCol[k]][row] == gs.boolWant[k] {
					e = 1
				}
				gs.v[k][i] += e
			}
			for k := range gs.sum {
				gs.sum[k][i] += b.Numeric[gs.targetCol[k]][row]
			}
		}
	}
	for _, ps := range st.pairs {
		ia := st.idx[ps.locA][:n]
		ib := st.idx[ps.locB][:n]
		colA := b.Numeric[ps.colA]
		colB := b.Numeric[ps.colB]
		obj := b.Bool[ps.objCol]
		pu, pv, cols := ps.pu, ps.pv, ps.cols
		minA, maxA := ps.minA, ps.maxA
		minB, maxB := ps.minB, ps.maxB
		want := ps.want
		for row := 0; row < n; row++ {
			ri := int(ia[row])
			if ri < 0 {
				continue
			}
			rj := int(ib[row])
			if rj < 0 {
				continue
			}
			idx := ri*cols + rj
			pu[idx]++
			// Flagless objective tally (as in the 1-D counting kernel):
			// the objective bit is ~50% either way, so a conditional
			// increment would mispredict constantly.
			e := 0.0
			if obj[row] == want {
				e = 1
			}
			pv[idx] += e
			a := colA[row]
			if a < minA[ri] {
				minA[ri] = a
			}
			if a > maxA[ri] {
				maxA[ri] = a
			}
			bv := colB[row]
			if bv < minB[rj] {
				minB[rj] = bv
			}
			if bv > maxB[rj] {
				maxB[rj] = bv
			}
		}
	}
}

// merge folds other's tallies into st, padding slots included. All
// statistics are integer counts or extremes (float sums force a serial
// scan; the pair objective tallies are exact small integers in
// float64), so the merged state matches a serial scan exactly
// regardless of segmentation.
func (st *execState) merge(other *execState) {
	for i, gs := range st.groups {
		og := other.groups[i]
		gs.total += og.total
		gs.nans += og.nans
		for j := range gs.u {
			gs.u[j] += og.u[j]
		}
		for k := range gs.v {
			for j := range gs.v[k] {
				gs.v[k][j] += og.v[k][j]
			}
		}
		for k := range gs.sum {
			for j := range gs.sum[k] {
				//optlint:ignore floatmerge unreachable in parallel: float target sums force scanParallelism to 1 and useScatter rejects target schedules, so this fold only ever sees the single serial partial
				gs.sum[k][j] += og.sum[k][j]
			}
		}
		if gs.minv != nil {
			for j := range gs.minv {
				if og.minv[j] < gs.minv[j] {
					gs.minv[j] = og.minv[j]
				}
				if og.maxv[j] > gs.maxv[j] {
					gs.maxv[j] = og.maxv[j]
				}
			}
		}
	}
	for i, ps := range st.pairs {
		op := other.pairs[i]
		for j := range ps.pu {
			ps.pu[j] += op.pu[j]
		}
		for j := range ps.pv {
			//optlint:ignore floatmerge pair objective tallies are exact small integer counts stored in float64; integer-valued addition is exact, so the fold order cannot change the result
			ps.pv[j] += op.pv[j]
		}
		for j := range ps.minA {
			if op.minA[j] < ps.minA[j] {
				ps.minA[j] = op.minA[j]
			}
			if op.maxA[j] > ps.maxA[j] {
				ps.maxA[j] = op.maxA[j]
			}
		}
		for j := range ps.minB {
			if op.minB[j] < ps.minB[j] {
				ps.minB[j] = op.minB[j]
			}
			if op.maxB[j] > ps.maxB[j] {
				ps.maxB[j] = op.maxB[j]
			}
		}
	}
}

// publish converts the final tally state into cached statistics,
// slicing the trash slots off every padded array (with full capacity
// caps, so no later append can reach into them) and copying the pair
// tallies into their grids' flat backing.
func (st *execState) publish(set *StatsSet) {
	for _, gs := range st.groups {
		var minv, maxv []float64
		if gs.minv != nil {
			minv = gs.minv[:gs.m:gs.m]
			maxv = gs.maxv[:gs.m:gs.m]
		}
		s := &Stats1D{
			M: gs.m, Total: gs.total, NaNs: gs.nans,
			U:      gs.u[:gs.m:gs.m],
			MinVal: minv, MaxVal: maxv,
			V:   map[bucketing.BoolCond][]int{},
			Sum: map[int][]float64{},
		}
		for _, u := range gs.u[:gs.m] {
			s.N += u
		}
		for k, bc := range gs.need.Bools {
			s.V[bc] = gs.v[k][:gs.m:gs.m]
		}
		for k, t := range gs.need.Targets {
			s.Sum[t] = gs.sum[k][:gs.m:gs.m]
		}
		set.Groups[gs.need.Key] = s
	}
	for _, ps := range st.pairs {
		copy(ps.gu, ps.pu) // padding slot beyond len(gu) stays behind
		copy(ps.gv, ps.pv)
		ra, ca := ps.grid.Rows(), ps.grid.Cols()
		set.Pairs[ps.need.Key] = &Stats2D{
			Grid: ps.grid,
			MinA: ps.minA[:ra:ra], MaxA: ps.maxA[:ra:ra],
			MinB: ps.minB[:ca:ca], MaxB: ps.maxB[:ca:ca],
			N:    ps.grid.Total(),
			Hits: int(ps.grid.SumV()),
		}
	}
}

// commonFilterPred returns the zone-map pushdown predicate when every
// scheduled statistic is a 1-D group carrying the same non-empty
// filter — the conjunctive-query shape. Rows in a storage block group
// the filter provably rejects wholesale then never leave the disk:
// they contribute only to each group's Total, which the skip callback
// settles without decoding a byte. Pair grids veto the pushdown (they
// count unfiltered rows), as does any filter divergence.
func commonFilterPred(groups []*GroupNeed, pairs []*PairNeed) *relation.Predicate {
	if len(pairs) > 0 || len(groups) == 0 {
		return nil
	}
	first := groups[0]
	if first.Key.Filter == "" {
		return nil
	}
	for _, g := range groups[1:] {
		if g.Key.Filter != first.Key.Filter {
			return nil
		}
	}
	p := &relation.Predicate{}
	for _, bc := range first.Filter {
		p.Bools = append(p.Bools, relation.BoolPredicate{Attr: bc.Attr, Want: bc.Want})
	}
	return p
}

// prunedOrRange scans [start,end) through the pruned path when both a
// pushdown predicate and a PrunedRangeScanner are at hand, and through
// the plain range scan otherwise. Skipped rows fold into every group's
// Total — the only statistic a filter-rejected row touches.
func prunedOrRange(rel relation.Relation, rs relation.RangeScanner, start, end int,
	cols relation.ColumnSet, pred *relation.Predicate, st *execState,
	fn func(*relation.Batch) error) error {
	if pred != nil {
		if prs, ok := rel.(relation.PrunedRangeScanner); ok {
			return prs.ScanRangePruned(start, end, cols, pred, func(rows int) error {
				for _, gs := range st.groups {
					gs.total += rows
				}
				return nil
			}, fn)
		}
	}
	if rs != nil {
		return rs.ScanRange(start, end, cols, fn)
	}
	return rel.Scan(cols, fn)
}

// countGeneral runs the general fused counting scan, serial or
// dynamically scheduled over cost-balanced storage-aligned chunks
// (PlanScanChunks), with the common-filter zone-map pushdown when the
// schedule allows it. ref selects the reference per-tuple kernel.
// Cancellation is observed between batches.
func countGeneral(ctx context.Context, rel relation.Relation, set *StatsSet, groups []*GroupNeed, pairs []*PairNeed, pes int, ref bool) error {
	cols, numPos, boolPos := execLayout(groups, pairs)
	pred := commonFilterPred(groups, pairs)
	if pes <= 1 {
		st, err := newExecState(set, groups, pairs, numPos, boolPos, ref)
		if err != nil {
			return err
		}
		if err := prunedOrRange(rel, nil, 0, rel.NumTuples(), cols, pred, st,
			func(b *relation.Batch) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				st.countBatch(b)
				return nil
			}); err != nil {
			return fmt.Errorf("plan: counting: %w", err)
		}
		st.publish(set)
		return nil
	}
	rs := rel.(relation.RangeScanner) // guaranteed by scanParallelism
	// Zone-map-aware dynamic scheduling: the storage layer prices
	// block-group-aligned chunks under the pushdown predicate (pruned
	// groups ~0), pes workers claim them off a shared counter, and the
	// per-CHUNK states merge in chunk index order. The chunk plan and
	// fold order are deterministic, so the published integer statistics
	// are bit-identical across worker counts, placements, and steal
	// orders; directory-less storage degrades to the static aligned
	// segments.
	chunks := relation.PlanScanChunks(rel, pes, cols, pred)
	states := make([]*execState, len(chunks))
	// One error slot per chunk: the FIRST error in chunk (row) order is
	// the one reported, deterministically — not whichever worker's
	// failure happened to land on a channel first.
	errs := make([]error, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := pes
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				local, err := newExecState(set, groups, pairs, numPos, boolPos, ref)
				if err != nil {
					errs[i] = err
					continue
				}
				states[i] = local
				if chunks[i].Pruned {
					// Planner-proved empty under the pushdown predicate: no
					// scan issued; the rows fold into every group's Total,
					// exactly as the skip callback would settle them.
					rows := chunks[i].End - chunks[i].Start
					for _, gs := range local.groups {
						gs.total += rows
					}
					continue
				}
				errs[i] = prunedOrRange(rel, rs, chunks[i].Start, chunks[i].End, cols, pred, local,
					func(b *relation.Batch) error {
						if err := ctx.Err(); err != nil {
							return err
						}
						local.countBatch(b)
						return nil
					})
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("plan: counting: %w", err)
		}
	}
	total := states[0]
	for _, part := range states[1:] {
		total.merge(part)
	}
	total.publish(set)
	return nil
}
