package plan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"optrule/internal/bucketing"
	"optrule/internal/relation"
)

// DeltaStats reports what one incremental refresh did. It is the
// observable contract of the O(Δ) ingest path: rows scanned must track
// the appended tail, not the relation.
type DeltaStats struct {
	// OldRows/NewRows bracket the refresh: the relation grew from
	// OldRows to NewRows and only [OldRows, NewRows) was new.
	OldRows, NewRows int
	// TailScans counts counting scans issued over the appended tail
	// (0 when the cache held nothing foldable), and RowsScanned the tail
	// rows they covered.
	TailScans   int
	RowsScanned int64
	// Resamples counts boundary sets re-sampled because the appended
	// fraction exceeded the Section 3.4 bucket-error budget;
	// EntriesDropped counts cached groups and grids discarded because
	// their boundaries were re-sampled (or evicted) — they recount cold
	// on next demand. EntriesFolded counts entries advanced by an
	// integer-exact tail fold.
	Resamples      int
	EntriesFolded  int
	EntriesDropped int
	// Invalidated reports the fallback: the relation cannot scan ranges
	// (or shrank), so the whole cache was dropped instead of folded.
	Invalidated bool
}

// resampleBudget is the appended-fraction threshold above which cached
// boundaries must be re-sampled. Section 3.4 sizes the sample so each
// bucket's population error stays within ~1/(2*sqrt(sampleFactor)) of
// the 1/M target; an appended fraction beyond that budget can shift
// true bucket populations by more than the sampling error the paper
// already tolerates, so reusing the old cuts would no longer be
// "approximately equi-depth" in the paper's sense. Below the budget the
// appended rows are absorbed as additional (bounded) skew.
func resampleBudget(sampleFactor int) float64 {
	if sampleFactor <= 0 {
		sampleFactor = 40 // the paper's experimental setting, Config's default
	}
	return 0.5 / math.Sqrt(float64(sampleFactor))
}

// RunDelta folds an appended tail [oldN, newN) into every cached
// statistic, replacing the O(n) invalidate-and-rebuild with an O(Δ)
// counting scan:
//
//   - Cached boundaries within the bucket-error budget are reused as-is
//     (the budget accumulates across repeated appends: the fraction is
//     measured against each entry's sample-time row count, not the
//     previous refresh).
//   - Boundaries over budget are re-sampled over the full relation with
//     the same per-attribute RNG streams a cold session would use, so
//     the replacement cuts are bit-identical to a cold rebuild's; every
//     group and grid counted over replaced cuts is dropped (its old
//     counts are misaligned) and recounts on next demand.
//   - Surviving groups and grids are completed by ONE fused counting
//     scan over just the tail — reusing the general kernel, the common-
//     filter zone-map pushdown, and the cost-balanced chunk planner —
//     and advanced to generation gen by integer-exact folds. Float
//     target sums are stripped by the fold (their accumulation order is
//     observable); the next average query recounts them serially and
//     merges them back, keeping every extracted rule bit-identical to a
//     cold rebuild over the same boundaries.
//
// Relations that cannot scan ranges fall back to invalidation. The
// caller (the session layer) must serialize RunDelta against batch
// execution and pass gen = one past the generation the cached entries
// carry.
func RunDelta(ctx context.Context, rel relation.Relation, d Defaults, cache *LRUCache, oldN, newN int, gen int64) (DeltaStats, error) {
	ds := DeltaStats{OldRows: oldN, NewRows: newN}
	if newN == oldN {
		return ds, nil
	}
	rs, rangeOK := rel.(relation.RangeScanner)
	if newN < oldN || !rangeOK {
		// Shrinkage means an in-place rewrite, not an append; a relation
		// without range scans gives the tail no address. Either way the
		// cached statistics cannot be reconciled — drop them all.
		st := cache.Stats()
		ds.EntriesDropped = st.Entries
		ds.Invalidated = true
		cache.Invalidate()
		return ds, nil
	}
	if err := ctx.Err(); err != nil {
		return ds, err
	}

	bounds, cachedGroups, cachedPairs := cache.snapshotForDelta()
	if len(cachedGroups) == 0 && len(cachedPairs) == 0 && len(bounds) == 0 {
		return ds, nil
	}

	// Budget check per boundary set, in deterministic key order.
	budget := resampleBudget(d.SampleFactor)
	var boundOrder []BoundKey
	for bk := range bounds {
		boundOrder = append(boundOrder, bk)
	}
	sort.Slice(boundOrder, func(i, j int) bool {
		a, b := boundOrder[i], boundOrder[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return !a.Exact && b.Exact
	})
	resample := map[BoundKey]bool{}
	for _, bk := range boundOrder {
		frac := float64(newN-bounds[bk].Rows) / float64(newN)
		if frac > budget {
			resample[bk] = true
		}
	}

	// Re-sample over-budget boundaries over the FULL relation, one fused
	// sampling pass, per-attribute RNG streams — exactly the cuts a cold
	// session with the same seed would build.
	if len(resample) > 0 {
		var specs []bucketing.BoundarySpec
		var rngs []*rand.Rand
		var keys []BoundKey
		for _, bk := range boundOrder {
			if !resample[bk] {
				continue
			}
			exact := 0
			if bk.Exact {
				exact = d.ExactDomainLimit
			}
			specs = append(specs, bucketing.BoundarySpec{Attr: bk.Attr, M: bk.M,
				SampleFactor: d.SampleFactor, ExactDomainLimit: exact})
			rngs = append(rngs, AttrRNG(d.Seed, bk.Attr))
			keys = append(keys, bk)
		}
		fresh, err := bucketing.MultiSampledBoundarySpecs(rel, specs, rngs)
		if err != nil {
			return ds, fmt.Errorf("plan: delta resampling: %w", err)
		}
		for i, bk := range keys {
			cache.PutBounds(bk, fresh[i], newN)
		}
		ds.Resamples = len(keys)
	}

	// Partition cached groups and grids into foldable survivors and
	// drops. A survivor's boundaries must be cached AND not re-sampled;
	// anything else recounts cold on next demand.
	var groupOrder []GroupKey
	for gk := range cachedGroups {
		groupOrder = append(groupOrder, gk)
	}
	sort.Slice(groupOrder, func(i, j int) bool {
		a, b := groupOrder[i], groupOrder[j]
		if a.Driver != b.Driver {
			return a.Driver < b.Driver
		}
		if a.M != b.M {
			return a.M < b.M
		}
		if a.Exact != b.Exact {
			return !a.Exact
		}
		return a.Filter < b.Filter
	})
	var pairOrder []PairKey
	for pk := range cachedPairs {
		pairOrder = append(pairOrder, pk)
	}
	sort.Slice(pairOrder, func(i, j int) bool {
		a, b := pairOrder[i], pairOrder[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.ObjAttr != b.ObjAttr {
			return a.ObjAttr < b.ObjAttr
		}
		return !a.ObjWant && b.ObjWant
	})

	set := newStatsSet()
	var drops []any
	var groups []*GroupNeed
	for _, gk := range groupOrder {
		bk := BoundKey{Attr: gk.Driver, M: gk.M, Exact: gk.Exact}
		be, ok := bounds[bk]
		if !ok || resample[bk] {
			drops = append(drops, gk)
			continue
		}
		need, err := needFromCachedGroup(gk, cachedGroups[gk])
		if err != nil {
			return ds, err
		}
		set.Bounds[bk] = be.B
		groups = append(groups, need)
	}
	var pairs []*PairNeed
	for _, pk := range pairOrder {
		bkA := BoundKey{Attr: pk.A, M: pk.Side}
		bkB := BoundKey{Attr: pk.B, M: pk.Side}
		beA, okA := bounds[bkA]
		beB, okB := bounds[bkB]
		if !okA || !okB || resample[bkA] || resample[bkB] {
			drops = append(drops, pk)
			continue
		}
		set.Bounds[bkA] = beA.B
		set.Bounds[bkB] = beB.B
		pairs = append(pairs, &PairNeed{Key: pk, A: pk.A, B: pk.B, Side: pk.Side,
			Obj: bucketing.BoolCond{Attr: pk.ObjAttr, Want: pk.ObjWant}})
	}

	if len(drops) > 0 {
		cache.dropForDelta(drops)
		ds.EntriesDropped = len(drops)
	}
	if len(groups) == 0 && len(pairs) == 0 {
		cache.noteDelta(0, 0, int64(ds.Resamples), 0)
		return ds, nil
	}

	// One fused counting scan over the tail only.
	if err := countTail(ctx, rel, rs, d, set, groups, pairs, oldN, newN); err != nil {
		return ds, err
	}
	ds.TailScans = 1
	ds.RowsScanned = int64(newN - oldN)

	// Integer-exact folds, published through the generation-aware puts
	// (the folded entry's newer generation replaces the cached one).
	for _, need := range groups {
		tail := set.Groups[need.Key]
		folded := cachedGroups[need.Key].foldedWith(tail, gen)
		cache.Put1D(need.Key, folded)
		ds.EntriesFolded++
	}
	for _, need := range pairs {
		tail := set.Pairs[need.Key]
		folded, err := cachedPairs[need.Key].foldedWith(tail, gen)
		if err != nil {
			return ds, fmt.Errorf("plan: delta fold: %w", err)
		}
		cache.Put2D(need.Key, folded)
		ds.EntriesFolded++
	}
	cache.noteDelta(int64(ds.TailScans), ds.RowsScanned, int64(ds.Resamples), int64(ds.EntriesFolded))
	return ds, nil
}

// needFromCachedGroup reconstructs the scan requirement a cached group
// answers, from its key and tallied rows alone: the delta executor has
// no query at hand, only the statistic. Float target sums are omitted
// on purpose — the fold strips them (see Stats1D.foldedWith).
func needFromCachedGroup(gk GroupKey, s *Stats1D) (*GroupNeed, error) {
	filter, err := parseCanonicalFilter(gk.Filter)
	if err != nil {
		return nil, err
	}
	bools := make([]bucketing.BoolCond, 0, len(s.V))
	for bc := range s.V {
		bools = append(bools, bc)
	}
	sort.Slice(bools, func(i, j int) bool {
		if bools[i].Attr != bools[j].Attr {
			return bools[i].Attr < bools[j].Attr
		}
		return !bools[i].Want && bools[j].Want
	})
	return &GroupNeed{
		Key:           gk,
		Driver:        gk.Driver,
		Filter:        filter,
		Bools:         bools,
		TrackExtremes: s.MinVal != nil,
	}, nil
}

// countTail is countGeneral clipped to the appended tail [start, end):
// same fused kernel, same pushdown, same cost-balanced chunk plan with
// every chunk intersected against the tail. All tail tallies are
// integer-exact (the reconstructed needs carry no float targets), so
// segmentation cannot perturb the folded statistics.
func countTail(ctx context.Context, rel relation.Relation, rs relation.RangeScanner,
	d Defaults, set *StatsSet, groups []*GroupNeed, pairs []*PairNeed, start, end int) error {
	cols, numPos, boolPos := execLayout(groups, pairs)
	pred := commonFilterPred(groups, pairs)
	pes := scanParallelism(rel, d, groups, pairs)
	if n := end - start; pes > n {
		pes = n
	}
	if pes <= 1 {
		st, err := newExecState(set, groups, pairs, numPos, boolPos, d.RefKernel)
		if err != nil {
			return err
		}
		if err := prunedOrRange(rel, rs, start, end, cols, pred, st,
			func(b *relation.Batch) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				st.countBatch(b)
				return nil
			}); err != nil {
			return fmt.Errorf("plan: delta counting: %w", err)
		}
		st.publish(set)
		return nil
	}
	// Clip the full-relation chunk plan to the tail; chunks entirely
	// before start drop out, the straddling chunk shrinks. Per-chunk
	// states merge in chunk index (row) order, exactly like countGeneral.
	full := relation.PlanScanChunks(rel, pes, cols, pred)
	var chunks []relation.ScanChunk
	for _, c := range full {
		if c.End <= start || c.Start >= end {
			continue
		}
		if c.Start < start {
			c.Start = start
			c.Pruned = false // the clipped part was priced, not this slice
		}
		if c.End > end {
			c.End = end
			c.Pruned = false
		}
		chunks = append(chunks, c)
	}
	if len(chunks) == 0 {
		chunks = []relation.ScanChunk{{Start: start, End: end}}
	}
	states := make([]*execState, len(chunks))
	errs := make([]error, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := pes
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				local, err := newExecState(set, groups, pairs, numPos, boolPos, d.RefKernel)
				if err != nil {
					errs[i] = err
					continue
				}
				states[i] = local
				if chunks[i].Pruned {
					rows := chunks[i].End - chunks[i].Start
					for _, gs := range local.groups {
						gs.total += rows
					}
					continue
				}
				errs[i] = prunedOrRange(rel, rs, chunks[i].Start, chunks[i].End, cols, pred, local,
					func(b *relation.Batch) error {
						if err := ctx.Err(); err != nil {
							return err
						}
						local.countBatch(b)
						return nil
					})
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("plan: delta counting: %w", err)
		}
	}
	total := states[0]
	for _, part := range states[1:] {
		total.merge(part)
	}
	total.publish(set)
	return nil
}
