package plan

import (
	"fmt"

	"optrule/internal/bucketing"
	"optrule/internal/relation"
)

// Defaults carries the session-level configuration that shapes
// sufficient statistics: thresholds fill unset query fields, the rest
// (seed, sample factor, exact-domain limit) pin the statistic
// identity. Within one session all of these are constant, which is
// what lets cache keys stay small.
type Defaults struct {
	MinSupport       float64
	MinConfidence    float64
	Buckets          int
	GridSide         int
	SampleFactor     int
	ExactDomainLimit int
	Seed             int64
	// PEs > 1 segments the counting scan (Algorithm 3.2); see Run.
	PEs int
	// RefKernel forces the general counting scan's reference per-tuple
	// kernel instead of the batch-vectorized one. Results are identical
	// (the differential tests pin this); the switch exists for
	// benchmark comparisons and regression triage.
	RefKernel bool
	// Scatter enables the fault-tolerant scatter-gather counting
	// executor (scatter.go). The zero value keeps the serial/segmented
	// executors untouched.
	Scatter ScatterConfig
}

// Resolved is a Query bound to a concrete schema: attribute positions,
// defaulted thresholds, and the statistic keys its answer derives from.
type Resolved struct {
	Q  Query
	Op Op

	MinSupport    float64
	MinConfidence float64
	M             int  // 1-D bucket resolution
	Exact         bool // finest-bucket path enabled for the 1-D boundaries
	Side          int  // 2-D per-axis resolution
	K             int
	MinAverage    float64
	Kinds         []RuleKind
	Regions       []RegionClass

	// 1-D rule ops (OpRules, OpTopK).
	Drivers []int
	Objs    []bucketing.BoolCond // extraction order
	Filter  []bucketing.BoolCond // user order, for condition rendering
	Keys    []GroupKey           // one per driver

	// OpConjunctive.
	C1, C2     []bucketing.BoolCond
	UKey, VKey GroupKey

	// OpAverage / OpSupportRange.
	Target int

	// OpRules2D.
	Attrs   []int
	Names   []string
	ObjAttr int
	ObjWant bool
	PairKys []PairKey // (i, j) enumeration order, i < j over Attrs
}

// resolveBool maps a named condition list onto schema positions.
func resolveBool(s relation.Schema, conds []Condition) ([]bucketing.BoolCond, error) {
	var out []bucketing.BoolCond
	for _, c := range conds {
		a := s.Index(c.Attr)
		if a < 0 || s[a].Kind != relation.Boolean {
			return nil, fmt.Errorf("plan: condition attribute %q is not Boolean", c.Attr)
		}
		out = append(out, bucketing.BoolCond{Attr: a, Want: c.Value})
	}
	return out, nil
}

// resolveNumeric maps one named numeric attribute.
func resolveNumeric(s relation.Schema, name string) (int, error) {
	a := s.Index(name)
	if a < 0 || s[a].Kind != relation.Numeric {
		return -1, fmt.Errorf("plan: %q is not a numeric attribute", name)
	}
	return a, nil
}

// resolveObjective maps one named Boolean attribute.
func resolveObjective(s relation.Schema, name string) (int, error) {
	a := s.Index(name)
	if a < 0 || s[a].Kind != relation.Boolean {
		return -1, fmt.Errorf("plan: %q is not a Boolean attribute", name)
	}
	return a, nil
}

// groupKey builds the cache key for one driver's count group.
func groupKey(driver, m int, exact bool, filter []bucketing.BoolCond) (GroupKey, []bucketing.BoolCond) {
	canon, uniq := canonicalFilter(filter)
	return GroupKey{Driver: driver, M: m, Exact: exact, Filter: canon}, uniq
}

// Resolve validates q against rel's schema and the session defaults and
// derives the statistic keys its answer needs. Threshold defaulting
// follows the miner's Config convention: a zero field selects the
// session default.
func Resolve(rel relation.Relation, d Defaults, q Query) (*Resolved, error) {
	s := rel.Schema()
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("plan: empty relation")
	}
	r := &Resolved{
		Q:             q,
		Op:            q.Op,
		MinSupport:    q.MinSupport,
		MinConfidence: q.MinConfidence,
		M:             q.Buckets,
		Side:          q.GridSide,
		K:             q.K,
		MinAverage:    q.MinAverage,
		Kinds:         q.Kinds,
		Regions:       q.Regions,
	}
	if q.Op != OpAverage && q.Op != OpSupportRange {
		// The average-operator ops take their floors literally (a zero
		// support floor means "any range"); rule ops follow the Config
		// convention where zero selects the session default.
		if r.MinSupport == 0 {
			r.MinSupport = d.MinSupport
		}
		if r.MinConfidence == 0 {
			r.MinConfidence = d.MinConfidence
		}
	}
	if r.MinSupport < 0 || r.MinSupport > 1 {
		return nil, fmt.Errorf("plan: MinSupport %g out of [0,1]", r.MinSupport)
	}
	if r.MinConfidence < 0 || r.MinConfidence > 1 {
		return nil, fmt.Errorf("plan: MinConfidence %g out of [0,1]", r.MinConfidence)
	}
	if r.M == 0 {
		r.M = d.Buckets
	}
	if r.M < 1 {
		return nil, fmt.Errorf("plan: bucket count %d must be positive", r.M)
	}
	if r.Side == 0 {
		r.Side = d.GridSide
	}
	if r.Side < 1 {
		return nil, fmt.Errorf("plan: grid side %d must be positive", r.Side)
	}
	if err := rejectUnusedFields(q); err != nil {
		return nil, err
	}
	for _, kind := range r.Kinds {
		switch kind {
		case OptimizedSupport, OptimizedConfidence, OptimizedGain:
		default:
			return nil, fmt.Errorf("plan: unknown rule kind %v", kind)
		}
	}
	for _, class := range r.Regions {
		switch class {
		case XMonotoneClass, RectilinearConvexClass:
		case RectangleClass:
			return nil, fmt.Errorf("plan: rectangles are mined via Kinds, not Regions")
		default:
			return nil, fmt.Errorf("plan: unknown region class %v", class)
		}
	}

	switch q.Op {
	case OpRules:
		return r.resolveRules(s, d)
	case OpConjunctive:
		return r.resolveConjunctive(s, d)
	case OpTopK:
		return r.resolveTopK(s)
	case OpAverage, OpSupportRange:
		return r.resolveAverage(s)
	case OpRules2D:
		return r.resolveRules2D(s)
	default:
		return nil, fmt.Errorf("plan: unknown op %v", q.Op)
	}
}

// rejectUnusedFields fails a query carrying populated fields its op
// would silently ignore: a conditioned top-k query, a 1-D query with a
// second axis attribute, an average query with rule kinds — all smell
// like the user meant a different op, and dropping the field would
// mine something other than what they asked for. The fail-loudly
// contract of the batch format extends down to resolution.
func rejectUnusedFields(q Query) error {
	avg := q.Op == OpAverage || q.Op == OpSupportRange
	checks := []struct {
		name string
		set  bool
		used bool
	}{
		{"numericB", q.NumericB != "", q.Op == OpRules2D},
		{"numerics", q.Numerics != nil, q.Op == OpRules2D},
		{"objective", q.Objective != "", q.Op == OpRules || q.Op == OpTopK || q.Op == OpRules2D},
		{"objectives", q.Objectives != nil, q.Op == OpConjunctive},
		{"conditions", q.Conditions != nil, q.Op == OpRules || q.Op == OpConjunctive},
		{"kinds", q.Kinds != nil, !avg},
		{"regions", q.Regions != nil, q.Op == OpRules2D},
		{"negations", q.Negations, q.Op == OpRules},
		{"buckets", q.Buckets != 0, q.Op != OpRules2D},
		{"gridSide", q.GridSide != 0, q.Op == OpRules2D},
		{"minSupport", q.MinSupport != 0, q.Op != OpSupportRange},
		{"minConfidence", q.MinConfidence != 0, !avg},
		{"k", q.K != 0, q.Op == OpTopK},
		{"target", q.Target != "", avg},
		{"minAverage", q.MinAverage != 0, q.Op == OpSupportRange},
	}
	for _, c := range checks {
		if c.set && !c.used {
			return fmt.Errorf("plan: field %s is not used by op %q", c.name, q.Op)
		}
	}
	return nil
}

func (r *Resolved) resolveRules(s relation.Schema, d Defaults) (*Resolved, error) {
	q := r.Q
	if r.Kinds == nil {
		r.Kinds = []RuleKind{OptimizedSupport, OptimizedConfidence}
	}
	if q.Numeric == "" {
		r.Drivers = append(r.Drivers, s.NumericIndices()...)
		if len(r.Drivers) == 0 {
			return nil, fmt.Errorf("plan: no numeric attributes")
		}
	} else {
		a, err := resolveNumeric(s, q.Numeric)
		if err != nil {
			return nil, err
		}
		r.Drivers = []int{a}
	}
	if q.Objective == "" {
		for _, b := range s.BooleanIndices() {
			r.Objs = append(r.Objs, bucketing.BoolCond{Attr: b, Want: true})
			if q.Negations {
				r.Objs = append(r.Objs, bucketing.BoolCond{Attr: b, Want: false})
			}
		}
		if len(r.Objs) == 0 {
			return nil, fmt.Errorf("plan: no Boolean attributes to use as objectives")
		}
	} else {
		a, err := resolveObjective(s, q.Objective)
		if err != nil {
			return nil, err
		}
		r.Objs = []bucketing.BoolCond{{Attr: a, Want: q.ObjectiveValue}}
	}
	filter, err := resolveBool(s, q.Conditions)
	if err != nil {
		return nil, err
	}
	r.Filter = filter
	r.Exact = d.ExactDomainLimit > 0
	for _, driver := range r.Drivers {
		key, _ := groupKey(driver, r.M, r.Exact, filter)
		r.Keys = append(r.Keys, key)
	}
	return r, nil
}

func (r *Resolved) resolveConjunctive(s relation.Schema, d Defaults) (*Resolved, error) {
	q := r.Q
	if r.Kinds == nil {
		r.Kinds = []RuleKind{OptimizedSupport, OptimizedConfidence}
	}
	if len(q.Objectives) == 0 {
		return nil, fmt.Errorf("plan: at least one objective condition required")
	}
	a, err := resolveNumeric(s, q.Numeric)
	if err != nil {
		return nil, err
	}
	r.Drivers = []int{a}
	if r.C1, err = resolveBool(s, q.Conditions); err != nil {
		return nil, err
	}
	if r.C2, err = resolveBool(s, q.Objectives); err != nil {
		return nil, err
	}
	r.Exact = d.ExactDomainLimit > 0
	r.UKey, _ = groupKey(a, r.M, r.Exact, r.C1)
	r.VKey, _ = groupKey(a, r.M, r.Exact, append(append([]bucketing.BoolCond{}, r.C1...), r.C2...))
	return r, nil
}

func (r *Resolved) resolveTopK(s relation.Schema) (*Resolved, error) {
	q := r.Q
	if r.K < 1 {
		return nil, fmt.Errorf("plan: k = %d must be positive", r.K)
	}
	if r.Kinds == nil {
		r.Kinds = []RuleKind{OptimizedConfidence}
	}
	if len(r.Kinds) != 1 || r.Kinds[0] == OptimizedGain {
		return nil, fmt.Errorf("plan: top-k needs exactly one kind, optimized-support or optimized-confidence")
	}
	a, err := resolveNumeric(s, q.Numeric)
	if err != nil {
		return nil, err
	}
	obj, err := resolveObjective(s, q.Objective)
	if err != nil {
		return nil, err
	}
	r.Drivers = []int{a}
	r.Objs = []bucketing.BoolCond{{Attr: obj, Want: q.ObjectiveValue}}
	// The ranked-ranges and average-operator paths bucket with the plain
	// sampled boundaries (no finest-bucket promotion), matching their
	// one-shot ancestors.
	key, _ := groupKey(a, r.M, false, nil)
	r.Keys = []GroupKey{key}
	return r, nil
}

func (r *Resolved) resolveAverage(s relation.Schema) (*Resolved, error) {
	q := r.Q
	a, err := resolveNumeric(s, q.Numeric)
	if err != nil {
		return nil, err
	}
	t, err := resolveNumeric(s, q.Target)
	if err != nil {
		return nil, err
	}
	r.Drivers = []int{a}
	r.Target = t
	key, _ := groupKey(a, r.M, false, nil)
	r.Keys = []GroupKey{key}
	return r, nil
}

func (r *Resolved) resolveRules2D(s relation.Schema) (*Resolved, error) {
	q := r.Q
	if r.Kinds == nil {
		r.Kinds = []RuleKind{OptimizedSupport, OptimizedConfidence}
	}
	names := q.Numerics
	if names == nil && q.Numeric != "" {
		if q.NumericB == "" {
			return nil, fmt.Errorf("plan: 2-D mining needs two numeric attributes (numericB missing)")
		}
		names = []string{q.Numeric, q.NumericB}
	}
	if names == nil {
		for _, i := range s.NumericIndices() {
			names = append(names, s[i].Name)
		}
	}
	if len(names) < 2 {
		return nil, fmt.Errorf("plan: 2-D mining needs at least two numeric attributes, got %d", len(names))
	}
	attrs := make([]int, len(names))
	seen := make(map[int]bool, len(names))
	for k, name := range names {
		a, err := resolveNumeric(s, name)
		if err != nil {
			return nil, err
		}
		if seen[a] {
			return nil, fmt.Errorf("plan: the two numeric attributes must differ")
		}
		seen[a] = true
		attrs[k] = a
	}
	if q.Objective == "" {
		return nil, fmt.Errorf("plan: 2-D mining requires an objective attribute")
	}
	obj, err := resolveObjective(s, q.Objective)
	if err != nil {
		return nil, err
	}
	r.Attrs, r.Names, r.ObjAttr, r.ObjWant = attrs, names, obj, q.ObjectiveValue
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			r.PairKys = append(r.PairKys, PairKey{
				A: attrs[i], B: attrs[j], Side: r.Side,
				ObjAttr: obj, ObjWant: q.ObjectiveValue,
			})
		}
	}
	return r, nil
}

// Requirements aggregates the statistics a batch of resolved queries
// needs, deduplicating groups and pairs across queries and unioning
// the rows wanted from each group. Iteration order is first-seen, so
// scan layouts are deterministic.
type Requirements struct {
	Groups     map[GroupKey]*GroupNeed
	GroupOrder []GroupKey
	Pairs      map[PairKey]*PairNeed
	PairOrder  []PairKey
	// Gen is the cache generation the batch executes against. Statistics
	// it publishes are stamped with it, so partials computed before a
	// concurrent append/refresh are discarded rather than merged into
	// already-advanced cache entries.
	Gen int64
}

// NewRequirements creates an empty requirement set.
func NewRequirements() *Requirements {
	return &Requirements{
		Groups: map[GroupKey]*GroupNeed{},
		Pairs:  map[PairKey]*PairNeed{},
	}
}

// group returns (creating if needed) the aggregated need for key.
func (req *Requirements) group(key GroupKey, driver int, filter []bucketing.BoolCond) *GroupNeed {
	if n, ok := req.Groups[key]; ok {
		return n
	}
	_, canon := canonicalFilter(filter)
	n := &GroupNeed{Key: key, Driver: driver, Filter: canon}
	req.Groups[key] = n
	req.GroupOrder = append(req.GroupOrder, key)
	return n
}

// Add folds one resolved query's needs into the set.
func (req *Requirements) Add(r *Resolved) {
	switch r.Op {
	case OpRules:
		for i, driver := range r.Drivers {
			n := req.group(r.Keys[i], driver, r.Filter)
			n.addBools(r.Objs)
			n.TrackExtremes = true
		}
	case OpConjunctive:
		u := req.group(r.UKey, r.Drivers[0], r.C1)
		u.TrackExtremes = true
		req.group(r.VKey, r.Drivers[0], append(append([]bucketing.BoolCond{}, r.C1...), r.C2...))
	case OpTopK:
		n := req.group(r.Keys[0], r.Drivers[0], nil)
		n.addBools(r.Objs)
		n.TrackExtremes = true
	case OpAverage, OpSupportRange:
		n := req.group(r.Keys[0], r.Drivers[0], nil)
		n.addTargets([]int{r.Target})
		n.TrackExtremes = true
	case OpRules2D:
		for _, key := range r.PairKys {
			if _, ok := req.Pairs[key]; ok {
				continue
			}
			req.Pairs[key] = &PairNeed{
				Key: key, A: key.A, B: key.B, Side: key.Side,
				Obj: bucketing.BoolCond{Attr: key.ObjAttr, Want: key.ObjWant},
			}
			req.PairOrder = append(req.PairOrder, key)
		}
	}
}
