package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"optrule/internal/bucketing"
	"optrule/internal/region"
)

// Sufficient-statistic keys. Everything a scan produces is addressed by
// one of the three key types below; thresholds, rule kinds, and region
// classes never appear in a key because they do not change what the
// scans compute.

// BoundKey identifies one attribute's bucket boundaries: the attribute,
// the bucket count, and whether the finest-bucket (exact small domain)
// path was enabled when they were built. Within one session the random
// seed, sample factor, and exact-domain limit are fixed, so they are
// not part of the key.
type BoundKey struct {
	Attr  int
	M     int
	Exact bool
}

// GroupKey identifies one driver attribute's per-bucket count group:
// the driver, its boundary resolution, and the canonical presumptive
// filter. The objectives and targets tallied within the group are NOT
// part of the key — a cached group grows monotonically as queries ask
// for more objective rows over the same buckets.
type GroupKey struct {
	Driver int
	M      int
	Exact  bool
	Filter string // canonical filter rendering, "" when unfiltered
}

// PairKey identifies one 2-D pair grid: both axis attributes (in grid
// orientation: A buckets rows, B buckets columns), the per-axis side,
// and the objective condition.
type PairKey struct {
	A, B    int
	Side    int
	ObjAttr int
	ObjWant bool
}

// canonicalFilter renders a conjunction of Boolean conditions as a
// deterministic key component: sorted by attribute then value, with
// duplicates removed (a conjunction is a set). Counting semantics are
// order- and duplicate-insensitive, so queries spelling the same
// conjunction differently share one statistic.
func canonicalFilter(conds []bucketing.BoolCond) (string, []bucketing.BoolCond) {
	if len(conds) == 0 {
		return "", nil
	}
	canon := append([]bucketing.BoolCond(nil), conds...)
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].Attr != canon[j].Attr {
			return canon[i].Attr < canon[j].Attr
		}
		return !canon[i].Want && canon[j].Want
	})
	uniq := canon[:0]
	for _, c := range canon {
		if len(uniq) == 0 || uniq[len(uniq)-1] != c {
			uniq = append(uniq, c)
		}
	}
	var b strings.Builder
	for i, c := range uniq {
		if i > 0 {
			b.WriteByte(',')
		}
		v := 0
		if c.Want {
			v = 1
		}
		fmt.Fprintf(&b, "%d=%d", c.Attr, v)
	}
	return b.String(), uniq
}

// parseCanonicalFilter is canonicalFilter's inverse: it rebuilds the
// condition list from a GroupKey.Filter rendering. The delta executor
// uses it to reconstruct a cached group's filter without the original
// query, so an appended tail is counted under exactly the conditions
// the cached statistic was.
func parseCanonicalFilter(s string) ([]bucketing.BoolCond, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]bucketing.BoolCond, 0, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, fmt.Errorf("plan: malformed canonical filter term %q", p)
		}
		attr, err := strconv.Atoi(p[:eq])
		if err != nil || attr < 0 {
			return nil, fmt.Errorf("plan: malformed canonical filter term %q", p)
		}
		switch p[eq+1:] {
		case "0":
			out = append(out, bucketing.BoolCond{Attr: attr, Want: false})
		case "1":
			out = append(out, bucketing.BoolCond{Attr: attr, Want: true})
		default:
			return nil, fmt.Errorf("plan: malformed canonical filter term %q", p)
		}
	}
	return out, nil
}

// Stats1D is one driver group's cached sufficient statistics: the
// bucket populations plus whatever objective rows, target sums, and
// extremes have been tallied for it so far. All slices are read-only
// once published to a cache — extraction layers must not mutate them.
type Stats1D struct {
	M     int
	N     int // tuples passing the filter and landing in a bucket
	Total int // tuples scanned (before the filter)
	NaNs  int // filter-passing tuples whose driver value was NaN
	// Gen is the cache generation the statistic covers (how many
	// incremental refreshes of the relation it has absorbed). A
	// generation-aware cache refuses to merge partials across different
	// generations — they were counted over different row sets.
	Gen int64
	U   []int
	// MinVal/MaxVal are observed per-bucket driver extremes; nil when
	// never tracked for this group.
	MinVal, MaxVal []float64
	// V holds one per-bucket objective count row per tallied condition.
	V map[bucketing.BoolCond][]int
	// Sum holds one per-bucket value-sum row per tallied target.
	Sum map[int][]float64
}

// Covers reports whether the statistic already holds everything need
// asks for, i.e. the need can be answered without any scan.
func (s *Stats1D) Covers(need *GroupNeed) bool {
	if s == nil {
		return false
	}
	if need.TrackExtremes && s.MinVal == nil {
		return false
	}
	for _, bc := range need.Bools {
		if _, ok := s.V[bc]; !ok {
			return false
		}
	}
	for _, t := range need.Targets {
		if _, ok := s.Sum[t]; !ok {
			return false
		}
	}
	return true
}

// mergedWith returns a NEW statistic holding the union of s's and
// fresh's rows, leaving both inputs untouched: published Stats1D
// values are read concurrently without locks, so the cache merges by
// copy-on-write rather than mutation. The bucket populations of both
// sides were counted over identical boundaries and rows, so
// U/N/extremes are interchangeable; s's rows win on overlap.
func (s *Stats1D) mergedWith(fresh *Stats1D) *Stats1D {
	out := &Stats1D{
		M: s.M, N: s.N, Total: s.Total, NaNs: s.NaNs, Gen: s.Gen,
		U:      s.U,
		MinVal: s.MinVal, MaxVal: s.MaxVal,
		V:   make(map[bucketing.BoolCond][]int, len(s.V)+len(fresh.V)),
		Sum: make(map[int][]float64, len(s.Sum)+len(fresh.Sum)),
	}
	if out.MinVal == nil {
		out.MinVal, out.MaxVal = fresh.MinVal, fresh.MaxVal
	}
	for bc, row := range s.V {
		out.V[bc] = row
	}
	for bc, row := range fresh.V {
		if _, ok := out.V[bc]; !ok {
			out.V[bc] = row
		}
	}
	for t, row := range s.Sum {
		out.Sum[t] = row
	}
	for t, row := range fresh.Sum {
		if _, ok := out.Sum[t]; !ok {
			out.Sum[t] = row
		}
	}
	return out
}

// foldedWith returns a NEW statistic equal to s plus the appended
// tail's tallies, advancing the generation to gen. Like mergedWith it
// is copy-on-write: published statistics are read concurrently without
// locks, so neither input is touched. All folds are integer-exact
// (counts add; extremes take min/max) EXCEPT float target sums, whose
// accumulation order is observable in the last bits — a folded sum
// would differ from a cold serial recount — so Sum rows are STRIPPED:
// the next query needing one recounts it (serially, over the full
// relation) and merges it back in, preserving bit-identity with a cold
// rebuild. Rows of s that tail does not carry are dropped the same way
// (the tail scan is planned FROM s, so in practice tail carries
// everything).
func (s *Stats1D) foldedWith(tail *Stats1D, gen int64) *Stats1D {
	out := &Stats1D{
		M: s.M, N: s.N + tail.N, Total: s.Total + tail.Total, NaNs: s.NaNs + tail.NaNs,
		Gen: gen,
		U:   addInts(s.U, tail.U),
		V:   make(map[bucketing.BoolCond][]int, len(s.V)),
		Sum: map[int][]float64{},
	}
	if s.MinVal != nil && tail.MinVal != nil {
		out.MinVal = foldExtremes(s.MinVal, tail.MinVal, false)
		out.MaxVal = foldExtremes(s.MaxVal, tail.MaxVal, true)
	}
	for bc, row := range s.V {
		if tailRow, ok := tail.V[bc]; ok {
			out.V[bc] = addInts(row, tailRow)
		}
	}
	return out
}

// addInts returns a+b elementwise in fresh storage.
func addInts(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// foldExtremes returns the elementwise min (or max) in fresh storage.
func foldExtremes(a, b []float64, max bool) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i]
		if (max && b[i] > out[i]) || (!max && b[i] < out[i]) {
			out[i] = b[i]
		}
	}
	return out
}

// sizeBytes estimates the statistic's memory footprint for cache
// accounting.
func (s *Stats1D) sizeBytes() int64 {
	b := int64(64) // struct + map overhead, roughly
	b += int64(len(s.U)) * 8
	b += int64(len(s.MinVal)+len(s.MaxVal)) * 8
	for _, row := range s.V {
		b += int64(len(row))*8 + 32
	}
	for _, row := range s.Sum {
		b += int64(len(row))*8 + 32
	}
	return b
}

// Counts assembles a bucketing.Counts view over the statistic for the
// requested objective conditions and targets, in the given order. The
// returned Counts aliases the cached slices; callers treat it as
// read-only (Compact allocates fresh storage when it drops buckets).
func (s *Stats1D) Counts(bools []bucketing.BoolCond, targets []int, extremes bool) (*bucketing.Counts, error) {
	c := &bucketing.Counts{
		M:     s.M,
		N:     s.N,
		Total: s.Total,
		NaNs:  s.NaNs,
		U:     s.U,
	}
	for _, bc := range bools {
		row, ok := s.V[bc]
		if !ok {
			return nil, fmt.Errorf("plan: objective row %+v missing from cached group", bc)
		}
		c.V = append(c.V, row)
	}
	for _, t := range targets {
		row, ok := s.Sum[t]
		if !ok {
			return nil, fmt.Errorf("plan: target row %d missing from cached group", t)
		}
		c.Sum = append(c.Sum, row)
	}
	if extremes {
		if s.MinVal == nil {
			return nil, fmt.Errorf("plan: extremes missing from cached group")
		}
		c.MinVal, c.MaxVal = s.MinVal, s.MaxVal
	}
	return c, nil
}

// Stats2D is one attribute pair's cached grid plus the per-bucket value
// extremes that translate bucket ranges back to closed value ranges. A
// tuple counts toward a pair iff BOTH its values are finite, so the
// extremes are tracked per pair, not per attribute. Read-only once
// published.
type Stats2D struct {
	Grid       *region.Grid
	MinA, MaxA []float64
	MinB, MaxB []float64
	N, Hits    int
	// Gen mirrors Stats1D.Gen: the cache generation the grid covers.
	Gen int64
}

// sizeBytes estimates the grid's memory footprint for cache accounting.
func (s *Stats2D) sizeBytes() int64 {
	cells := int64(s.Grid.Rows()) * int64(s.Grid.Cols())
	return cells*16 + int64(len(s.MinA)+len(s.MaxA)+len(s.MinB)+len(s.MaxB))*8 + 64
}

// foldedWith returns a NEW grid statistic equal to s plus the appended
// tail's cells, advancing the generation to gen. Cell counts and the
// objective tallies are exact small integers (the tallies are
// integer-valued float64s, exact under addition), and the per-bucket
// extremes fold by min/max, so the result is bit-identical to counting
// prefix+tail in one scan over the same boundaries.
func (s *Stats2D) foldedWith(tail *Stats2D, gen int64) (*Stats2D, error) {
	g, err := region.NewGrid(s.Grid.Rows(), s.Grid.Cols())
	if err != nil {
		return nil, err
	}
	if err := g.Merge(s.Grid); err != nil {
		return nil, err
	}
	if err := g.Merge(tail.Grid); err != nil {
		return nil, err
	}
	return &Stats2D{
		Grid: g,
		MinA: foldExtremes(s.MinA, tail.MinA, false), MaxA: foldExtremes(s.MaxA, tail.MaxA, true),
		MinB: foldExtremes(s.MinB, tail.MinB, false), MaxB: foldExtremes(s.MaxB, tail.MaxB, true),
		N: s.N + tail.N, Hits: s.Hits + tail.Hits,
		Gen: gen,
	}, nil
}

// GroupNeed is a planner-aggregated 1-D requirement: one count group
// and the union of objective rows, target rows, and extremes every
// query in the batch wants from it.
type GroupNeed struct {
	Key           GroupKey
	Driver        int
	Filter        []bucketing.BoolCond // canonical order
	Bools         []bucketing.BoolCond // union, first-seen order
	Targets       []int                // union, first-seen order
	TrackExtremes bool
}

// addBools unions conditions into the need.
func (n *GroupNeed) addBools(conds []bucketing.BoolCond) {
	for _, bc := range conds {
		seen := false
		for _, have := range n.Bools {
			if have == bc {
				seen = true
				break
			}
		}
		if !seen {
			n.Bools = append(n.Bools, bc)
		}
	}
}

// addTargets unions target attributes into the need.
func (n *GroupNeed) addTargets(targets []int) {
	for _, t := range targets {
		seen := false
		for _, have := range n.Targets {
			if have == t {
				seen = true
				break
			}
		}
		if !seen {
			n.Targets = append(n.Targets, t)
		}
	}
}

// PairNeed is a planner-aggregated 2-D requirement.
type PairNeed struct {
	Key  PairKey
	A, B int
	Side int
	Obj  bucketing.BoolCond
}

// StatsSet is the working set one batch execution assembles: every
// boundary, group, and pair statistic the batch's queries bind to. It
// is private to the batch, so extraction never races cache eviction.
type StatsSet struct {
	Bounds map[BoundKey]bucketing.Boundaries
	Groups map[GroupKey]*Stats1D
	Pairs  map[PairKey]*Stats2D
}

func newStatsSet() *StatsSet {
	return &StatsSet{
		Bounds: map[BoundKey]bucketing.Boundaries{},
		Groups: map[GroupKey]*Stats1D{},
		Pairs:  map[PairKey]*Stats2D{},
	}
}
