// Package plan is the query planning layer of the miner: a small query
// IR, a planner that dedupes the sufficient statistics a batch of
// queries needs, and an executor that materializes the missing
// statistics in at most TWO relation scans (one fused sampling scan,
// one fused counting scan) regardless of how many queries the batch
// holds.
//
// The key observation — the paper's own — is that the bucketed counts
// are *sufficient statistics*: once an attribute's (or attribute
// pair's) count grid exists, the optimized rule for ANY threshold,
// objective kind, or region class is derived from the grid alone
// without touching the relation again. The plan layer therefore splits
// mining into a data plane (boundaries, count arrays, pair grids —
// produced by scans, cached) and a query plane (the Section 4 / §1.4
// optimization kernels — pure CPU on the cached statistics, run by
// internal/miner). A mixed batch of 1-D and 2-D queries shares exactly
// two scans; a repeat query whose statistics are cached costs zero.
package plan

import (
	"encoding/json"
	"fmt"
)

// RuleKind says which optimization produces a rule.
type RuleKind int

const (
	// OptimizedSupport rules maximize support subject to a minimum
	// confidence (Algorithms 4.3 + 4.4).
	OptimizedSupport RuleKind = iota
	// OptimizedConfidence rules maximize confidence subject to a
	// minimum support (Algorithms 4.1 + 4.2).
	OptimizedConfidence
	// OptimizedGain rules maximize the gain Σ(v_i − θ·u_i): the excess
	// number of hits over what the confidence threshold θ requires.
	// Discussed at the end of the paper's §4.2 (Bentley/Kadane) and
	// developed as a rule class in the authors' follow-up work; found in
	// O(M) with Kadane's algorithm. Unlike the other two kinds, gain
	// balances support and confidence in a single objective.
	OptimizedGain
)

// String returns the kind name.
func (k RuleKind) String() string {
	switch k {
	case OptimizedSupport:
		return "optimized-support"
	case OptimizedConfidence:
		return "optimized-confidence"
	case OptimizedGain:
		return "optimized-gain"
	default:
		return fmt.Sprintf("RuleKind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind as its name.
func (k RuleKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// UnmarshalJSON decodes a kind from its name (as MarshalJSON writes
// it); unknown names are errors, so a malformed batch file fails
// loudly instead of silently mining the zero kind.
func (k *RuleKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("plan: rule kind must be a string: %w", err)
	}
	switch name {
	case "optimized-support":
		*k = OptimizedSupport
	case "optimized-confidence":
		*k = OptimizedConfidence
	case "optimized-gain":
		*k = OptimizedGain
	default:
		return fmt.Errorf("plan: unknown rule kind %q", name)
	}
	return nil
}

// RegionClass selects the 2-D region family for region mining — the
// three classes named in the paper's §1.4 in increasing generality.
type RegionClass int

const (
	// RectangleClass is mined via rule kinds, not region classes;
	// listed for completeness.
	RectangleClass RegionClass = iota
	// RectilinearConvexClass regions intersect every row AND column in
	// one interval (KDD'97 companion [20]).
	RectilinearConvexClass
	// XMonotoneClass regions intersect every column in one interval
	// (SIGMOD'96 companion [7]).
	XMonotoneClass
)

// String returns the class name.
func (c RegionClass) String() string {
	switch c {
	case RectangleClass:
		return "rectangle"
	case RectilinearConvexClass:
		return "rectilinear-convex"
	case XMonotoneClass:
		return "x-monotone"
	default:
		return fmt.Sprintf("RegionClass(%d)", int(c))
	}
}

// MarshalJSON encodes the class as its name.
func (c RegionClass) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// UnmarshalJSON decodes a class from its name; unknown names are
// errors.
func (c *RegionClass) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("plan: region class must be a string: %w", err)
	}
	switch name {
	case "x-monotone", "xmonotone":
		*c = XMonotoneClass
	case "rectilinear-convex", "rectconvex":
		*c = RectilinearConvexClass
	default:
		return fmt.Errorf("plan: unknown region class %q (rectangles are mined via kinds)", name)
	}
	return nil
}

// Condition is a named primitive Boolean condition (Attr = Value).
type Condition struct {
	Attr  string `json:"attr"`
	Value bool   `json:"value"`
}

// Op is the operation a Query asks for.
type Op int

const (
	// OpRules mines 1-D optimized rules (A ∈ [v1,v2]) ⇒ (C = value),
	// optionally under presumptive conditions. An empty Numeric means
	// every numeric attribute; an empty Objective means every Boolean
	// attribute (the MineAll workload).
	OpRules Op = iota
	// OpConjunctive mines the fully general §4.3 rule form
	// (A ∈ [v1,v2]) ∧ C1 ⇒ C2 with conjunctions on both sides.
	OpConjunctive
	// OpTopK mines up to K pairwise-disjoint optimized ranges for one
	// (numeric, Boolean) pair, ranked best first.
	OpTopK
	// OpAverage finds the Numeric range maximizing the average of
	// Target among ranges with support ≥ MinSupport (Definition 5.2).
	OpAverage
	// OpSupportRange finds the Numeric range maximizing support among
	// ranges whose Target average is ≥ MinAverage (Definition 5.3).
	OpSupportRange
	// OpRules2D mines 2-D optimized rules (rectangle kinds and/or §1.4
	// region classes) over attribute pairs. Numeric+NumericB select one
	// pair; Numerics selects a set to pair up (empty = all numerics).
	OpRules2D
)

var opNames = map[Op]string{
	OpRules:        "rules",
	OpConjunctive:  "conjunctive",
	OpTopK:         "topk",
	OpAverage:      "average",
	OpSupportRange: "support-range",
	OpRules2D:      "rules2d",
}

// String returns the op name.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MarshalJSON encodes the op as its name.
func (o Op) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// UnmarshalJSON decodes an op from its name; unknown names are errors.
func (o *Op) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("plan: op must be a string: %w", err)
	}
	for op, n := range opNames {
		if n == name {
			*o = op
			return nil
		}
	}
	return fmt.Errorf("plan: unknown op %q", name)
}

// Query is one mining request in the session IR. The zero value of
// every optional field selects the session default (thresholds, bucket
// counts, grid side) so a Query carries only what distinguishes it.
// Queries are plain values: comparable-ish, JSON-serializable, and
// independent of any relation until resolved against a schema.
type Query struct {
	// Op selects the operation; OpRules is the zero value.
	Op Op `json:"op"`
	// Numeric is the range attribute A ("" = all numeric attributes,
	// OpRules and OpRules2D only).
	Numeric string `json:"numeric,omitempty"`
	// NumericB is the second axis attribute for a single-pair OpRules2D.
	NumericB string `json:"numericB,omitempty"`
	// Numerics lists the attributes OpRules2D pairs up (alternative to
	// Numeric+NumericB; empty with empty Numeric = all numerics).
	Numerics []string `json:"numerics,omitempty"`
	// Objective is the Boolean objective attribute C ("" = all Boolean
	// attributes, OpRules only).
	Objective string `json:"objective,omitempty"`
	// ObjectiveValue is the required value of C (true = yes).
	ObjectiveValue bool `json:"objectiveValue"`
	// Objectives is the conjunctive objective C2 (OpConjunctive).
	Objectives []Condition `json:"objectives,omitempty"`
	// Conditions is the presumptive conjunct C1.
	Conditions []Condition `json:"conditions,omitempty"`
	// Kinds lists the rule kinds to mine; nil selects the two
	// paper-standard kinds (OptimizedSupport, OptimizedConfidence). An
	// explicit empty slice mines no ranked rules (OpRules2D with only
	// Regions). No omitempty: nil and [] differ semantically, so a
	// marshaled query must round-trip the distinction (nil encodes as
	// null, [] as an empty array).
	Kinds []RuleKind `json:"kinds"`
	// Regions lists §1.4 region classes to mine per pair (OpRules2D).
	Regions []RegionClass `json:"regions,omitempty"`
	// Negations also mines (C = no) objectives (all-objectives OpRules).
	Negations bool `json:"negations,omitempty"`
	// Buckets overrides the 1-D bucket count M (0 = session default).
	Buckets int `json:"buckets,omitempty"`
	// GridSide overrides the 2-D per-axis bucket count (0 = default).
	GridSide int `json:"gridSide,omitempty"`
	// MinSupport / MinConfidence override the session thresholds
	// (0 = session default). Thresholds never influence which scans run:
	// two queries differing only here share all statistics.
	MinSupport    float64 `json:"minSupport,omitempty"`
	MinConfidence float64 `json:"minConfidence,omitempty"`
	// K is the number of disjoint ranges for OpTopK.
	K int `json:"k,omitempty"`
	// Target is the averaged attribute B (OpAverage, OpSupportRange).
	Target string `json:"target,omitempty"`
	// MinAverage is the average floor for OpSupportRange.
	MinAverage float64 `json:"minAverage,omitempty"`
}
