package plan

import (
	"container/list"
	"sort"
	"sync"

	"optrule/internal/bucketing"
)

// Cache stores sufficient statistics across batches. Implementations
// must be safe for concurrent use; Put1D must MERGE into an existing
// same-generation entry (statistics for one key only ever grow rows,
// never change them), and values handed out are shared read-only.
// PutBounds records the relation row count the boundaries were sampled
// over, so the delta executor can hold appended growth against the
// Section 3.4 bucket-error budget per boundary set.
type Cache interface {
	GetBounds(BoundKey) (bucketing.Boundaries, bool)
	PutBounds(BoundKey, bucketing.Boundaries, int)
	Get1D(GroupKey) (*Stats1D, bool)
	Put1D(GroupKey, *Stats1D) *Stats1D // returns the merged entry
	Get2D(PairKey) (*Stats2D, bool)
	Put2D(PairKey, *Stats2D) *Stats2D
}

// BoundEntry is a cached boundary set plus the relation row count it
// was sampled over — the denominator of the delta executor's appended-
// fraction budget check.
type BoundEntry struct {
	B    bucketing.Boundaries
	Rows int
}

// CacheStats reports a cache's occupancy and traffic, including the
// incremental-append delta-merge counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      int64
	Misses    int64
	Evictions int64
	// DeltaTailScans counts counting scans the delta executor ran over
	// appended tails; DeltaRowsScanned totals the tail rows they
	// delivered. DeltaResamples counts boundary sets re-sampled because
	// appended growth exceeded the bucket-error budget, and
	// DeltaEntriesFolded counts cached groups and pair grids updated by
	// an integer-exact fold (entries dropped pending re-sampled
	// boundaries are not folded; they recount on next demand).
	DeltaTailScans     int64
	DeltaRowsScanned   int64
	DeltaResamples     int64
	DeltaEntriesFolded int64
}

// LRUCache is the session statistics cache: size-accounted, bounded,
// least-recently-used eviction, safe for concurrent sessions. Bucket
// boundaries, 1-D count groups, and 2-D pair grids share one budget —
// a grid at side 256 costs ~1 MB while a 1000-bucket count group costs
// ~24 KB, so accounting by bytes (not entries) is what keeps a mixed
// workload's working set honest.
type LRUCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[any]*list.Element
	order    *list.List // front = most recently used
	hits     int64
	misses   int64
	evicts   int64

	// Delta-merge telemetry; see CacheStats.
	deltaTailScans     int64
	deltaRowsScanned   int64
	deltaResamples     int64
	deltaEntriesFolded int64
}

// DefaultCacheBytes is the default session cache budget.
const DefaultCacheBytes = 256 << 20

// NewCache creates an LRU statistics cache bounded at maxBytes
// (DefaultCacheBytes when maxBytes is 0; unbounded when negative).
func NewCache(maxBytes int64) *LRUCache {
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	}
	return &LRUCache{
		maxBytes: maxBytes,
		entries:  map[any]*list.Element{},
		order:    list.New(),
	}
}

// entry is one cached statistic with its accounted size.
type entry struct {
	key   any
	value any
	bytes int64
}

// get returns the entry for key, marking it most recently used.
func (c *LRUCache) get(key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// put inserts or replaces the entry for key and evicts LRU entries
// until the cache is within budget.
func (c *LRUCache) put(key any, value any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value, bytes)
}

// putLocked is put with c.mu already held. The just-inserted entry is
// never evicted, so a statistic larger than the whole budget still
// serves the batch that computed it (it simply will not survive the
// next insertion).
func (c *LRUCache) putLocked(key any, value any, bytes int64) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += bytes - e.bytes
		e.value, e.bytes = value, bytes
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry{key: key, value: value, bytes: bytes})
		c.entries[key] = el
		c.bytes += bytes
	}
	if c.maxBytes < 0 {
		return
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		el := c.order.Back()
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evicts++
	}
}

// removeLocked drops the entry for key, with c.mu held.
func (c *LRUCache) removeLocked(key any) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.entries, key)
		c.bytes -= e.bytes
	}
}

// GetBounds implements Cache.
func (c *LRUCache) GetBounds(k BoundKey) (bucketing.Boundaries, bool) {
	e, ok := c.GetBoundEntry(k)
	return e.B, ok
}

// GetBoundEntry returns the cached boundaries together with the row
// count they were sampled over.
func (c *LRUCache) GetBoundEntry(k BoundKey) (BoundEntry, bool) {
	v, ok := c.get(k)
	if !ok {
		return BoundEntry{}, false
	}
	return v.(BoundEntry), true
}

// PutBounds implements Cache. rows is the relation's row count at
// sampling time.
func (c *LRUCache) PutBounds(k BoundKey, b bucketing.Boundaries, rows int) {
	// A Boundaries value is dominated by its cut array; the slot table
	// adds ~4 int32 slots per cut.
	c.put(k, BoundEntry{B: b, Rows: rows}, int64(b.NumBuckets())*28+64)
}

// Get1D implements Cache.
func (c *LRUCache) Get1D(k GroupKey) (*Stats1D, bool) {
	v, ok := c.get(k)
	if !ok {
		return nil, false
	}
	return v.(*Stats1D), true
}

// Put1D implements Cache: if a same-generation entry already exists, a
// NEW statistic holding the union of its rows and the fresh rows
// replaces it (copy-on-write — published Stats1D values are immutable,
// so batches still reading the old entry race with nothing), and the
// merged entry is returned. The whole check-merge-insert runs in one
// critical section, so concurrent first-time publishers compose
// instead of clobbering each other. Generations never mix: a fresh
// statistic older than the cached entry is discarded (the cached entry
// already absorbed an append the stale partial has not seen), and one
// newer replaces the entry outright.
func (c *LRUCache) Put1D(k GroupKey, s *Stats1D) *Stats1D {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		have := el.Value.(*entry).value.(*Stats1D)
		switch {
		case have.Gen == s.Gen:
			s = have.mergedWith(s)
		case have.Gen > s.Gen:
			c.order.MoveToFront(el)
			return have // stale partial: never merged, never cached
		}
	}
	c.putLocked(k, s, s.sizeBytes())
	return s
}

// Get2D implements Cache.
func (c *LRUCache) Get2D(k PairKey) (*Stats2D, bool) {
	v, ok := c.get(k)
	if !ok {
		return nil, false
	}
	return v.(*Stats2D), true
}

// Put2D implements Cache. Pair grids carry a fixed statistic set, so a
// racing same-generation duplicate insert keeps the first entry (both
// hold identical counts); check and insert share one critical section.
// Generations follow the Put1D rules: stale grids are discarded, newer
// grids replace the entry.
func (c *LRUCache) Put2D(k PairKey, s *Stats2D) *Stats2D {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		have := el.Value.(*entry).value.(*Stats2D)
		if have.Gen >= s.Gen {
			c.order.MoveToFront(el)
			return have
		}
	}
	c.putLocked(k, s, s.sizeBytes())
	return s
}

// CopyBoundsFrom copies every cached boundary entry of src into c.
// Differential tests use it to pin a control session to the boundaries
// another session sampled, isolating counting behavior from sampling
// position.
func (c *LRUCache) CopyBoundsFrom(src *LRUCache) {
	type kv struct {
		k BoundKey
		v BoundEntry
	}
	src.mu.Lock()
	var pairs []kv
	for k, el := range src.entries {
		if bk, ok := k.(BoundKey); ok {
			pairs = append(pairs, kv{bk, el.Value.(*entry).value.(BoundEntry)})
		}
	}
	src.mu.Unlock()
	// Insert in a fixed order so the destination's LRU order does not
	// inherit the source map's randomized iteration order.
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i].k, pairs[j].k
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return !a.Exact && b.Exact
	})
	for _, p := range pairs {
		c.PutBounds(p.k, p.v.B, p.v.Rows)
	}
}

// snapshotForDelta returns every cached entry by kind, under one
// critical section, for the delta executor's planning pass.
func (c *LRUCache) snapshotForDelta() (bounds map[BoundKey]BoundEntry, groups map[GroupKey]*Stats1D, pairs map[PairKey]*Stats2D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bounds = map[BoundKey]BoundEntry{}
	groups = map[GroupKey]*Stats1D{}
	pairs = map[PairKey]*Stats2D{}
	for k, el := range c.entries {
		switch key := k.(type) {
		case BoundKey:
			bounds[key] = el.Value.(*entry).value.(BoundEntry)
		case GroupKey:
			groups[key] = el.Value.(*entry).value.(*Stats1D)
		case PairKey:
			pairs[key] = el.Value.(*entry).value.(*Stats2D)
		}
	}
	return bounds, groups, pairs
}

// dropForDelta removes the given keys (any mix of bound, group, and
// pair keys) in one critical section. The delta executor drops entries
// whose boundaries it re-sampled; they recount cold on next demand.
func (c *LRUCache) dropForDelta(keys []any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		c.removeLocked(k)
	}
}

// noteDelta folds one refresh's telemetry into the counters.
func (c *LRUCache) noteDelta(tailScans, rowsScanned, resamples, folded int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deltaTailScans += tailScans
	c.deltaRowsScanned += rowsScanned
	c.deltaResamples += resamples
	c.deltaEntriesFolded += folded
}

// SetMaxBytes rebounds the cache (0 restores DefaultCacheBytes,
// negative removes the bound) and evicts least-recently-used entries
// until the new budget holds.
func (c *LRUCache) SetMaxBytes(maxBytes int64) {
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = maxBytes
	if maxBytes < 0 {
		return
	}
	for c.bytes > c.maxBytes && c.order.Len() > 0 {
		el := c.order.Back()
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evicts++
	}
}

// Stats returns the cache's current occupancy and traffic counters.
func (c *LRUCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:            c.order.Len(),
		Bytes:              c.bytes,
		MaxBytes:           c.maxBytes,
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evicts,
		DeltaTailScans:     c.deltaTailScans,
		DeltaRowsScanned:   c.deltaRowsScanned,
		DeltaResamples:     c.deltaResamples,
		DeltaEntriesFolded: c.deltaEntriesFolded,
	}
}

// Invalidate empties the cache (e.g. after the underlying relation
// changed in place); traffic counters are preserved.
func (c *LRUCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[any]*list.Element{}
	c.order.Init()
	c.bytes = 0
}
