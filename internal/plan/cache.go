package plan

import (
	"container/list"
	"sync"

	"optrule/internal/bucketing"
)

// Cache stores sufficient statistics across batches. Implementations
// must be safe for concurrent use; Put1D must MERGE into an existing
// entry (statistics for one key only ever grow rows, never change
// them), and values handed out are shared read-only.
type Cache interface {
	GetBounds(BoundKey) (bucketing.Boundaries, bool)
	PutBounds(BoundKey, bucketing.Boundaries)
	Get1D(GroupKey) (*Stats1D, bool)
	Put1D(GroupKey, *Stats1D) *Stats1D // returns the merged entry
	Get2D(PairKey) (*Stats2D, bool)
	Put2D(PairKey, *Stats2D) *Stats2D
}

// CacheStats reports a cache's occupancy and traffic.
type CacheStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// LRUCache is the session statistics cache: size-accounted, bounded,
// least-recently-used eviction, safe for concurrent sessions. Bucket
// boundaries, 1-D count groups, and 2-D pair grids share one budget —
// a grid at side 256 costs ~1 MB while a 1000-bucket count group costs
// ~24 KB, so accounting by bytes (not entries) is what keeps a mixed
// workload's working set honest.
type LRUCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[any]*list.Element
	order    *list.List // front = most recently used
	hits     int64
	misses   int64
	evicts   int64
}

// DefaultCacheBytes is the default session cache budget.
const DefaultCacheBytes = 256 << 20

// NewCache creates an LRU statistics cache bounded at maxBytes
// (DefaultCacheBytes when maxBytes is 0; unbounded when negative).
func NewCache(maxBytes int64) *LRUCache {
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	}
	return &LRUCache{
		maxBytes: maxBytes,
		entries:  map[any]*list.Element{},
		order:    list.New(),
	}
}

// entry is one cached statistic with its accounted size.
type entry struct {
	key   any
	value any
	bytes int64
}

// get returns the entry for key, marking it most recently used.
func (c *LRUCache) get(key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// put inserts or replaces the entry for key and evicts LRU entries
// until the cache is within budget.
func (c *LRUCache) put(key any, value any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value, bytes)
}

// putLocked is put with c.mu already held. The just-inserted entry is
// never evicted, so a statistic larger than the whole budget still
// serves the batch that computed it (it simply will not survive the
// next insertion).
func (c *LRUCache) putLocked(key any, value any, bytes int64) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += bytes - e.bytes
		e.value, e.bytes = value, bytes
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry{key: key, value: value, bytes: bytes})
		c.entries[key] = el
		c.bytes += bytes
	}
	if c.maxBytes < 0 {
		return
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		el := c.order.Back()
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evicts++
	}
}

// GetBounds implements Cache.
func (c *LRUCache) GetBounds(k BoundKey) (bucketing.Boundaries, bool) {
	v, ok := c.get(k)
	if !ok {
		return bucketing.Boundaries{}, false
	}
	return v.(bucketing.Boundaries), true
}

// PutBounds implements Cache.
func (c *LRUCache) PutBounds(k BoundKey, b bucketing.Boundaries) {
	// A Boundaries value is dominated by its cut array; the slot table
	// adds ~4 int32 slots per cut.
	c.put(k, b, int64(b.NumBuckets())*28+64)
}

// Get1D implements Cache.
func (c *LRUCache) Get1D(k GroupKey) (*Stats1D, bool) {
	v, ok := c.get(k)
	if !ok {
		return nil, false
	}
	return v.(*Stats1D), true
}

// Put1D implements Cache: if an entry already exists, a NEW statistic
// holding the union of its rows and the fresh rows replaces it
// (copy-on-write — published Stats1D values are immutable, so batches
// still reading the old entry race with nothing), and the merged
// entry is returned. The whole check-merge-insert runs in one
// critical section, so concurrent first-time publishers compose
// instead of clobbering each other.
func (c *LRUCache) Put1D(k GroupKey, s *Stats1D) *Stats1D {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		s = el.Value.(*entry).value.(*Stats1D).mergedWith(s)
	}
	c.putLocked(k, s, s.sizeBytes())
	return s
}

// Get2D implements Cache.
func (c *LRUCache) Get2D(k PairKey) (*Stats2D, bool) {
	v, ok := c.get(k)
	if !ok {
		return nil, false
	}
	return v.(*Stats2D), true
}

// Put2D implements Cache. Pair grids carry a fixed statistic set, so a
// racing duplicate insert keeps the first entry (both hold identical
// counts); check and insert share one critical section.
func (c *LRUCache) Put2D(k PairKey, s *Stats2D) *Stats2D {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		have := el.Value.(*entry).value.(*Stats2D)
		c.order.MoveToFront(el)
		return have
	}
	c.putLocked(k, s, s.sizeBytes())
	return s
}

// SetMaxBytes rebounds the cache (0 restores DefaultCacheBytes,
// negative removes the bound) and evicts least-recently-used entries
// until the new budget holds.
func (c *LRUCache) SetMaxBytes(maxBytes int64) {
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = maxBytes
	if maxBytes < 0 {
		return
	}
	for c.bytes > c.maxBytes && c.order.Len() > 0 {
		el := c.order.Back()
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evicts++
	}
}

// Stats returns the cache's current occupancy and traffic counters.
func (c *LRUCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicts,
	}
}

// Invalidate empties the cache (e.g. after the underlying relation
// changed); traffic counters are preserved.
func (c *LRUCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[any]*list.Element{}
	c.order.Init()
	c.bytes = 0
}
