package plan

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// scatterFixture builds a sharded bank relation (range-scannable, with
// real shard boundaries for the scatter cuts) plus the Defaults the
// scatter tests share.
func scatterFixture(t *testing.T, n, shards int) (*relation.ShardedRelation, Defaults) {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rel.oprs")
	if err := datagen.WriteSharded(path, bank, n, 42, shards, 0); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sr.Close() })
	d := Defaults{
		MinSupport: 0.05, MinConfidence: 0.5,
		Buckets: 40, GridSide: 16, SampleFactor: 40, Seed: 1,
	}
	return sr, d
}

// scatterQueries is a mixed schedule: every numeric driver's 1-D
// groups (with a Boolean filter variant) plus one 2-D pair grid.
func scatterQueries() []Query {
	return []Query{
		{Op: OpRules, Objective: "CardLoan", ObjectiveValue: true},
		{Op: OpRules, Numeric: "Balance", Objective: "Mortgage", ObjectiveValue: true,
			Conditions: []Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan", ObjectiveValue: true},
	}
}

// runSchedule resolves the queries fresh and runs them through
// RunContext with the given Defaults and a cold cache.
func runSchedule(t *testing.T, rel relation.Relation, d Defaults, queries []Query) (*StatsSet, error) {
	t.Helper()
	req := NewRequirements()
	for _, q := range queries {
		r, err := Resolve(rel, d, q)
		if err != nil {
			t.Fatal(err)
		}
		req.Add(r)
	}
	return RunContext(context.Background(), rel, d, NewCache(0), req)
}

// sameStats requires field-exact equality of the materialized
// statistics — counts, extremes, filter variants, and pair grids. The
// scatter-gather merge is integer-exact, so "close" is not enough.
func sameStats(t *testing.T, name string, got, want *StatsSet) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) || len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: schedule shape differs: %d/%d groups, %d/%d pairs",
			name, len(got.Groups), len(want.Groups), len(got.Pairs), len(want.Pairs))
	}
	for k, w := range want.Groups {
		g, ok := got.Groups[k]
		if !ok {
			t.Fatalf("%s: group %+v missing", name, k)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: group %+v differs:\ngot:  %+v\nwant: %+v", name, k, g, w)
		}
	}
	for k, w := range want.Pairs {
		g, ok := got.Pairs[k]
		if !ok {
			t.Fatalf("%s: pair %+v missing", name, k)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: pair grid %+v differs", name, k)
		}
	}
}

// TestScatterMatchesSerialExactly pins the tentpole property: the
// scattered, merged statistics are field-for-field identical to one
// serial counting scan, at every worker count, including worker pools
// larger and smaller than the shard count.
func TestScatterMatchesSerialExactly(t *testing.T) {
	rel, d := scatterFixture(t, 6000, 4)
	want, err := runSchedule(t, rel, d, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Groups) == 0 || len(want.Pairs) == 0 {
		t.Fatal("degenerate schedule: no groups or pairs materialized")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		ds := d
		var stats ScatterStats
		ds.Scatter = ScatterConfig{Workers: workers, Stats: &stats}
		got, err := runSchedule(t, rel, ds, scatterQueries())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Tasks.Load() == 0 {
			t.Fatalf("workers=%d: scatter path did not engage", workers)
		}
		sameStats(t, "workers="+string(rune('0'+workers)), got, want)
	}
}

// TestScatterSerialForTargetSchedules pins the float-sum guard: a
// schedule carrying target sums (the average operator) silently takes
// the serial path even with workers configured — addition order must
// never depend on segmentation — and still answers correctly.
func TestScatterSerialForTargetSchedules(t *testing.T) {
	rel, d := scatterFixture(t, 3000, 3)
	avg := []Query{{Op: OpAverage, Numeric: "Balance", Target: "Age", MinSupport: 0.1}}
	want, err := runSchedule(t, rel, d, avg)
	if err != nil {
		t.Fatal(err)
	}
	ds := d
	var stats ScatterStats
	ds.Scatter = ScatterConfig{Workers: 4, Stats: &stats}
	got, err := runSchedule(t, rel, ds, avg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks.Load() != 0 {
		t.Errorf("target-sum schedule was scattered (%d tasks): float merge order is not reproducible",
			stats.Tasks.Load())
	}
	sameStats(t, "avg", got, want)
}

// flakyWorker fails its first failures calls, then delegates — the
// transient-fault shape the retry loop must absorb.
type flakyWorker struct {
	inner Worker
	left  atomic.Int64
}

func (w *flakyWorker) Count(ctx context.Context, task *CountTask) (*Partial, error) {
	if w.left.Add(-1) >= 0 {
		return nil, errors.New("transient worker failure")
	}
	return w.inner.Count(ctx, task)
}

// TestScatterRetriesTransientFailures pins recovery path 1: failed
// attempts are retried (re-routed off the failing worker) and the
// merged result is still exact.
func TestScatterRetriesTransientFailures(t *testing.T) {
	rel, d := scatterFixture(t, 6000, 4)
	want, err := runSchedule(t, rel, d, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	var stats ScatterStats
	ds := d
	ds.Scatter = ScatterConfig{
		Workers: 3,
		NewWorker: func(i int, r relation.Relation) Worker {
			w := &flakyWorker{inner: NewLocalWorker(r, false)}
			w.left.Store(1) // each worker's first attempt fails
			return w
		},
		MaxAttempts: 4,
		Backoff:     time.Microsecond,
		Stats:       &stats,
	}
	got, err := runSchedule(t, rel, ds, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries.Load() == 0 {
		t.Error("transient failures injected but no retries recorded")
	}
	if stats.Fallbacks.Load() != 0 {
		t.Errorf("%d fallbacks: retries should have absorbed the transient failures", stats.Fallbacks.Load())
	}
	sameStats(t, "flaky", got, want)
}

// stallWorker never answers: it parks until the attempt deadline kills
// it. Its partials must be discarded, not merged.
type stallWorker struct{}

func (stallWorker) Count(ctx context.Context, task *CountTask) (*Partial, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// stallFirstWorker stalls out its first attempt, then delegates — so
// whichever worker dequeues first is guaranteed to trip the deadline.
type stallFirstWorker struct {
	inner  Worker
	stalls atomic.Int64
}

func (w *stallFirstWorker) Count(ctx context.Context, task *CountTask) (*Partial, error) {
	if w.stalls.Add(-1) >= 0 {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return w.inner.Count(ctx, task)
}

// TestScatterTimeoutAbandonsStalledWorker pins recovery path 2: a
// stalled attempt trips the per-attempt deadline, the worker is
// abandoned, and its tasks complete elsewhere, exactly.
func TestScatterTimeoutAbandonsStalledWorker(t *testing.T) {
	rel, d := scatterFixture(t, 6000, 4)
	want, err := runSchedule(t, rel, d, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	var stats ScatterStats
	ds := d
	ds.Scatter = ScatterConfig{
		Workers: 2,
		NewWorker: func(i int, r relation.Relation) Worker {
			w := &stallFirstWorker{inner: NewLocalWorker(r, false)}
			w.stalls.Store(1)
			return w
		},
		TaskTimeout: 30 * time.Millisecond,
		MaxAttempts: 3,
		Backoff:     time.Microsecond,
		Stats:       &stats,
	}
	got, err := runSchedule(t, rel, ds, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timeouts.Load() == 0 {
		t.Error("stalled worker never tripped the per-attempt deadline")
	}
	sameStats(t, "stall", got, want)
}

// TestScatterFallbackWhenPoolBroken pins recovery path 3: with EVERY
// worker permanently broken, the coordinator direct-scans each task
// itself — the batch completes because the files are readable, and the
// answer is still exact.
func TestScatterFallbackWhenPoolBroken(t *testing.T) {
	rel, d := scatterFixture(t, 6000, 4)
	want, err := runSchedule(t, rel, d, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	var stats ScatterStats
	ds := d
	ds.Scatter = ScatterConfig{
		Workers: 2,
		NewWorker: func(i int, r relation.Relation) Worker {
			w := &flakyWorker{}
			w.left.Store(1 << 30) // never recovers
			return w
		},
		MaxAttempts: 2,
		Backoff:     time.Microsecond,
		Stats:       &stats,
	}
	got, err := runSchedule(t, rel, ds, scatterQueries())
	if err != nil {
		t.Fatal(err)
	}
	if f, tasks := stats.Fallbacks.Load(), stats.Tasks.Load(); f != tasks {
		t.Errorf("broken pool: %d fallbacks for %d tasks, want all", f, tasks)
	}
	sameStats(t, "fallback", got, want)
}

// TestScatterExhaustionSurfacesStorageError pins the terminal path:
// when workers AND the coordinator's direct scan hit storage failures,
// one clean error surfaces, carrying the injected fault's identity and
// the worker-attempt history.
func TestScatterExhaustionSurfacesStorageError(t *testing.T) {
	rel, d := scatterFixture(t, 4000, 3)
	// Ordinal 1 is the fused sampling scan — leave it healthy so the
	// failure lands squarely in the counting phase; every scan after it
	// (worker attempts and the direct fallback) fails.
	fail := make([]int, 64)
	for i := range fail {
		fail[i] = i + 2
	}
	frel := relation.NewFaultRelation(rel, relation.FaultConfig{FailScans: fail, FailAfterRows: 500})
	ds := d
	ds.Scatter = ScatterConfig{Workers: 2, MaxAttempts: 2, Backoff: time.Microsecond}
	_, err := runSchedule(t, frel, ds, scatterQueries())
	if err == nil {
		t.Fatal("exhausted retries and failed fallback returned success")
	}
	if !errors.Is(err, relation.ErrInjected) {
		t.Fatalf("storage error identity lost: %v", err)
	}
}

// TestScatterCancellation pins context plumbing: cancelling the batch
// context aborts the scatter (and the whole run) with the context's
// error, promptly.
func TestScatterCancellation(t *testing.T) {
	rel, d := scatterFixture(t, 6000, 4)
	ds := d
	ds.Scatter = ScatterConfig{
		Workers:   2,
		NewWorker: func(i int, r relation.Relation) Worker { return stallWorker{} },
	}
	req := NewRequirements()
	for _, q := range scatterQueries() {
		r, err := Resolve(rel, ds, q)
		if err != nil {
			t.Fatal(err)
		}
		req.Add(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, rel, ds, NewCache(0), req)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return (stalled workers held the batch)")
	}
}

// TestScatterCutsShardExact pins task placement: on a sharded relation
// the cuts are exactly the shard boundaries, one task per shard.
func TestScatterCutsShardExact(t *testing.T) {
	rel, _ := scatterFixture(t, 5000, 4)
	cuts := scatterCuts(rel, 8, relation.ColumnSet{}, nil)
	starts := rel.ShardStarts()
	if !reflect.DeepEqual(cuts, starts) {
		t.Errorf("scatter cuts %v != shard starts %v", cuts, starts)
	}
}
