package plan

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optrule/internal/relation"
)

// kernelTestRelation builds a relation exercising every kernel path:
// three numeric columns (one with NaN holes), three Boolean columns,
// and enough rows that buckets fill unevenly.
func kernelTestRelation(t *testing.T, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "Y", Kind: relation.Numeric},
		{Name: "T", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
		{Name: "F", Kind: relation.Boolean},
		{Name: "G", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 100
		if i%97 == 0 {
			x = math.NaN() // NaN drivers must count as NaNs, not buckets
		}
		rel.MustAppend(
			[]float64{x, rng.Float64() * 50, rng.NormFloat64() * 10},
			[]bool{rng.Intn(3) == 0, rng.Intn(2) == 0, rng.Intn(4) != 0},
		)
	}
	return rel
}

// kernelBatchRequirements resolves a deliberately heterogeneous batch
// — unfiltered rules with extremes, a filtered conjunctive query, an
// average-operator target sum, and a 2-D pair — whose mixed tally
// shapes force countScan off the homogeneous fast path and into the
// general kernel.
func kernelBatchRequirements(t *testing.T, rel relation.Relation, d Defaults, withTargets bool) *Requirements {
	t.Helper()
	queries := []Query{
		{Op: OpRules},
		{Op: OpConjunctive, Numeric: "X",
			Objectives: []Condition{{Attr: "C", Value: true}},
			Conditions: []Condition{{Attr: "F", Value: true}}},
		{Op: OpRules2D, Numeric: "X", NumericB: "Y", Objective: "C", ObjectiveValue: true},
	}
	if withTargets {
		queries = append(queries, Query{Op: OpAverage, Numeric: "Y", Target: "T", MinSupport: 0.1})
	}
	req := NewRequirements()
	for _, q := range queries {
		r, err := Resolve(rel, d, q)
		if err != nil {
			t.Fatalf("resolve %+v: %v", q, err)
		}
		req.Add(r)
	}
	return req
}

// compareStatsSets requires bit-identical statistics: every 1-D group
// field (including float target sums) and every 2-D grid cell and
// axis extreme must match exactly.
func compareStatsSets(t *testing.T, want, got *StatsSet) {
	t.Helper()
	if len(want.Groups) != len(got.Groups) || len(want.Pairs) != len(got.Pairs) {
		t.Fatalf("shape differs: %d/%d groups, %d/%d pairs",
			len(want.Groups), len(got.Groups), len(want.Pairs), len(got.Pairs))
	}
	for k, w := range want.Groups {
		g, ok := got.Groups[k]
		if !ok {
			t.Fatalf("group %+v missing", k)
		}
		if w.M != g.M || w.N != g.N || w.Total != g.Total || w.NaNs != g.NaNs {
			t.Errorf("group %+v scalars differ: want {M:%d N:%d Total:%d NaNs:%d}, got {M:%d N:%d Total:%d NaNs:%d}",
				k, w.M, w.N, w.Total, w.NaNs, g.M, g.N, g.Total, g.NaNs)
		}
		if !reflect.DeepEqual(w.U, g.U) {
			t.Errorf("group %+v bucket counts differ", k)
		}
		if !reflect.DeepEqual(w.MinVal, g.MinVal) || !reflect.DeepEqual(w.MaxVal, g.MaxVal) {
			t.Errorf("group %+v extremes differ", k)
		}
		if !reflect.DeepEqual(w.V, g.V) {
			t.Errorf("group %+v objective counts differ", k)
		}
		if !reflect.DeepEqual(w.Sum, g.Sum) {
			t.Errorf("group %+v target sums differ (must be bit-identical)", k)
		}
	}
	for k, w := range want.Pairs {
		g, ok := got.Pairs[k]
		if !ok {
			t.Fatalf("pair %+v missing", k)
		}
		if w.N != g.N || w.Hits != g.Hits {
			t.Errorf("pair %+v scalars differ: want {N:%d Hits:%d}, got {N:%d Hits:%d}",
				k, w.N, w.Hits, g.N, g.Hits)
		}
		if !reflect.DeepEqual(w.Grid.U, g.Grid.U) || !reflect.DeepEqual(w.Grid.V, g.Grid.V) {
			t.Errorf("pair %+v grid cells differ", k)
		}
		if !reflect.DeepEqual(w.MinA, g.MinA) || !reflect.DeepEqual(w.MaxA, g.MaxA) ||
			!reflect.DeepEqual(w.MinB, g.MinB) || !reflect.DeepEqual(w.MaxB, g.MaxB) {
			t.Errorf("pair %+v axis extremes differ", k)
		}
	}
}

// TestVectorizedKernelMatchesReference is the kernel differential: the
// batch-vectorized general counting kernel must produce statistics
// bit-identical to the reference per-tuple kernel — serial with float
// target sums, and segmented in parallel without them.
func TestVectorizedKernelMatchesReference(t *testing.T) {
	rel := kernelTestRelation(t, 20000)
	for _, tc := range []struct {
		name        string
		pes         int
		withTargets bool
	}{
		{"serial_with_target_sums", 0, true},
		{"parallel_4pe", 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(ref bool) *StatsSet {
				d := Defaults{Buckets: 137, GridSide: 23, SampleFactor: 40,
					Seed: 5, PEs: tc.pes, RefKernel: ref}
				req := kernelBatchRequirements(t, rel, d, tc.withTargets)
				set, err := Run(rel, d, NewCache(0), req)
				if err != nil {
					t.Fatal(err)
				}
				return set
			}
			want := run(true)
			got := run(false)
			if len(want.Groups) == 0 || len(want.Pairs) == 0 {
				t.Fatalf("reference run produced %d groups, %d pairs; differential test is vacuous",
					len(want.Groups), len(want.Pairs))
			}
			compareStatsSets(t, want, got)
		})
	}
}

// TestGeneralKernelPushdownOverV3 pins the common-filter zone-map
// pushdown: a batch whose groups all share one filter, run over a v3
// relation where the filter column is clustered, must read strictly
// fewer physical bytes than the same batch over v2 — while producing
// identical statistics.
func TestGeneralKernelPushdownOverV3(t *testing.T) {
	schema := relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "T", Kind: relation.Numeric},
		{Name: "F", Kind: relation.Boolean},
		{Name: "C", Kind: relation.Boolean},
	}
	const n, gr = 20000, 1000
	write := func(t *testing.T, path string, format int) *relation.DiskRelation {
		var dw *relation.DiskWriter
		var err error
		if format == relation.DiskFormatV3 {
			dw, err = relation.NewDiskWriterV3(path, schema, gr)
		} else {
			dw, err = relation.NewDiskWriterV2(path, schema, gr)
		}
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			// F true only in rows [4000, 8000): 16 of 20 block groups are
			// provably filter-free and prunable.
			if err := dw.Append(
				[]float64{rng.NormFloat64() * 100, rng.Float64() * 10},
				[]bool{i >= 4000 && i < 8000, rng.Intn(2) == 0},
			); err != nil {
				t.Fatal(err)
			}
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		dr, err := relation.OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		return dr
	}
	dir := t.TempDir()
	v2 := write(t, dir+"/rel.v2.opr", relation.DiskFormatV2)
	v3 := write(t, dir+"/rel.v3.opr", relation.DiskFormatV3)
	// Two resolutions of one filtered attribute: the same-driver groups
	// differ only in M, which forces countScan off the homogeneous fast
	// path into countGeneral — where their identical filter qualifies
	// for the common-filter pushdown.
	queries := []Query{
		{Op: OpRules, Numeric: "X", Objective: "C", ObjectiveValue: true,
			Conditions: []Condition{{Attr: "F", Value: true}}},
		{Op: OpRules, Numeric: "X", Objective: "C", ObjectiveValue: true,
			Conditions: []Condition{{Attr: "F", Value: true}}, Buckets: 50},
	}
	run := func(rel *relation.DiskRelation) (*StatsSet, int64) {
		d := Defaults{Buckets: 100, GridSide: 16, SampleFactor: 40, Seed: 7}
		req := NewRequirements()
		for _, q := range queries {
			r, err := Resolve(rel, d, q)
			if err != nil {
				t.Fatal(err)
			}
			req.Add(r)
		}
		before := rel.BytesRead()
		set, err := Run(rel, d, NewCache(0), req)
		if err != nil {
			t.Fatal(err)
		}
		return set, rel.BytesRead() - before
	}
	set2, bytes2 := run(v2)
	set3, bytes3 := run(v3)
	compareStatsSets(t, set2, set3)
	if bytes3 >= bytes2 {
		t.Errorf("v3 pushdown read %d bytes, v2 read %d; want strictly fewer", bytes3, bytes2)
	}
}
