package plan

import (
	"encoding/json"
	"reflect"
	"testing"

	"optrule/internal/bucketing"
	"optrule/internal/relation"
)

func TestQueryJSONRoundTrip(t *testing.T) {
	q := Query{
		Op:             OpRules2D,
		Numeric:        "Balance",
		NumericB:       "Age",
		Objective:      "CardLoan",
		ObjectiveValue: true,
		Kinds:          []RuleKind{OptimizedSupport, OptimizedGain},
		Regions:        []RegionClass{XMonotoneClass},
		GridSide:       32,
		MinConfidence:  0.7,
	}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, back) {
		t.Errorf("round trip changed the query:\n%+v\n%+v", q, back)
	}
}

func TestEnumJSONRejectsUnknownNames(t *testing.T) {
	var k RuleKind
	if err := json.Unmarshal([]byte(`"optimized-banana"`), &k); err == nil {
		t.Errorf("unknown rule kind accepted")
	}
	if err := json.Unmarshal([]byte(`7`), &k); err == nil {
		t.Errorf("numeric rule kind accepted")
	}
	var c RegionClass
	if err := json.Unmarshal([]byte(`"rectangle"`), &c); err == nil {
		t.Errorf("rectangle region class accepted (mined via kinds)")
	}
	var o Op
	if err := json.Unmarshal([]byte(`"mine-everything"`), &o); err == nil {
		t.Errorf("unknown op accepted")
	}
}

func TestCanonicalFilter(t *testing.T) {
	a := []bucketing.BoolCond{{Attr: 5, Want: false}, {Attr: 3, Want: true}, {Attr: 5, Want: false}}
	b := []bucketing.BoolCond{{Attr: 3, Want: true}, {Attr: 5, Want: false}}
	ka, ua := canonicalFilter(a)
	kb, ub := canonicalFilter(b)
	if ka != kb {
		t.Errorf("equivalent conjunctions got different keys: %q vs %q", ka, kb)
	}
	if !reflect.DeepEqual(ua, ub) {
		t.Errorf("canonical condition lists differ: %v vs %v", ua, ub)
	}
	if k, u := canonicalFilter(nil); k != "" || u != nil {
		t.Errorf("empty filter not canonicalized to empty key: %q %v", k, u)
	}
	// Contradictory conditions on one attribute are distinct entries,
	// not deduplicated away.
	if k, u := canonicalFilter([]bucketing.BoolCond{{Attr: 2, Want: true}, {Attr: 2, Want: false}}); len(u) != 2 || k == "" {
		t.Errorf("contradiction collapsed: %q %v", k, u)
	}
}

func TestLRUCacheEvictionOrder(t *testing.T) {
	c := NewCache(-1) // unbounded for setup
	mk := func(i int) (GroupKey, *Stats1D) {
		return GroupKey{Driver: i, M: 4}, &Stats1D{
			M: 4, U: make([]int, 4),
			V:   map[bucketing.BoolCond][]int{},
			Sum: map[int][]float64{},
		}
	}
	var keys []GroupKey
	var size int64
	for i := 0; i < 4; i++ {
		k, s := mk(i)
		keys = append(keys, k)
		c.Put1D(k, s)
		size = s.sizeBytes()
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := c.Get1D(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	c.SetMaxBytes(3 * size)
	if _, ok := c.Get1D(keys[1]); ok {
		t.Errorf("LRU entry survived eviction")
	}
	if _, ok := c.Get1D(keys[0]); !ok {
		t.Errorf("recently used entry evicted")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Entries != 3 {
		t.Errorf("unexpected cache stats after eviction: %+v", st)
	}
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("invalidate left entries behind: %+v", st)
	}
}

func TestPut1DMergesRows(t *testing.T) {
	c := NewCache(0)
	key := GroupKey{Driver: 1, M: 2}
	obj1 := bucketing.BoolCond{Attr: 3, Want: true}
	obj2 := bucketing.BoolCond{Attr: 3, Want: false}
	first := &Stats1D{M: 2, N: 10, U: []int{4, 6},
		V: map[bucketing.BoolCond][]int{obj1: {1, 2}}, Sum: map[int][]float64{}}
	second := &Stats1D{M: 2, N: 10, U: []int{4, 6},
		V: map[bucketing.BoolCond][]int{obj2: {3, 4}}, Sum: map[int][]float64{}}
	c.Put1D(key, first)
	merged := c.Put1D(key, second)
	if _, ok := merged.V[obj1]; !ok {
		t.Errorf("merge lost the original objective row")
	}
	if _, ok := merged.V[obj2]; !ok {
		t.Errorf("merge dropped the fresh objective row")
	}
	need := &GroupNeed{Key: key, Bools: []bucketing.BoolCond{obj1, obj2}}
	if !merged.Covers(need) {
		t.Errorf("merged entry does not cover the union need")
	}
	// Copy-on-write: the previously published statistics are immutable
	// — concurrent readers of either input must see no new map keys.
	if _, ok := first.V[obj2]; ok {
		t.Errorf("merge mutated the published entry")
	}
	if _, ok := second.V[obj1]; ok {
		t.Errorf("merge mutated the fresh statistic")
	}
	if got, ok := c.Get1D(key); !ok || got != merged {
		t.Errorf("cache does not serve the merged entry")
	}
}

// boundsMissCache serves count groups but never boundaries — the
// state after LRU pressure evicts a BoundKey entry while its covering
// Stats1D survives.
type boundsMissCache struct {
	groups map[GroupKey]*Stats1D
}

func (c *boundsMissCache) GetBounds(BoundKey) (bucketing.Boundaries, bool) {
	return bucketing.Boundaries{}, false
}
func (c *boundsMissCache) PutBounds(BoundKey, bucketing.Boundaries, int) {}
func (c *boundsMissCache) Get1D(k GroupKey) (*Stats1D, bool) {
	s, ok := c.groups[k]
	return s, ok
}
func (c *boundsMissCache) Put1D(k GroupKey, s *Stats1D) *Stats1D { return s }
func (c *boundsMissCache) Get2D(PairKey) (*Stats2D, bool)        { return nil, false }
func (c *boundsMissCache) Put2D(k PairKey, s *Stats2D) *Stats2D  { return s }

// TestRunSkipsBoundsForCoveredGroups pins that a batch whose 1-D
// groups are all cache-covered runs ZERO scans even when the
// boundaries were evicted: 1-D extraction works on counts alone, so
// re-sampling would be pure waste.
func TestRunSkipsBoundsForCoveredGroups(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	for i := 0; i < 100; i++ {
		rel.MustAppend([]float64{float64(i)}, []bool{i%2 == 0})
	}
	counting := &relation.CountingRelation{R: rel}
	key := GroupKey{Driver: 0, M: 10}
	obj := bucketing.BoolCond{Attr: 1, Want: true}
	covered := &Stats1D{
		M: 10, N: 100, Total: 100,
		U:      make([]int, 10),
		MinVal: make([]float64, 10), MaxVal: make([]float64, 10),
		V:   map[bucketing.BoolCond][]int{obj: make([]int, 10)},
		Sum: map[int][]float64{},
	}
	req := &Requirements{
		Groups: map[GroupKey]*GroupNeed{key: {
			Key: key, Driver: 0,
			Bools: []bucketing.BoolCond{obj}, TrackExtremes: true,
		}},
		GroupOrder: []GroupKey{key},
		Pairs:      map[PairKey]*PairNeed{},
	}
	cache := &boundsMissCache{groups: map[GroupKey]*Stats1D{key: covered}}
	set, err := Run(counting, Defaults{Buckets: 10, SampleFactor: 40, Seed: 1}, cache, req)
	if err != nil {
		t.Fatal(err)
	}
	if counting.Scans != 0 {
		t.Errorf("cache-covered batch ran %d scans, want 0 (bounds eviction must not resample)", counting.Scans)
	}
	if set.Groups[key] != covered {
		t.Errorf("working set does not hold the covered statistic")
	}
}
