package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optrule/internal/relation"
)

// Scatter-gather counting: the batch's deduplicated counting schedule
// is split at shard boundaries (storage-aligned segments on unsharded
// backends), scattered one-task-per-shard across a pool of workers,
// and the partial tallies are gathered and merged exactly. The merge
// is bit-exact because a scattered schedule carries only integer
// counts and extremes (float target sums force the serial path — see
// scanParallelism), so mined rules are identical to a single-node run
// REGARDLESS of worker count, task placement, retries, or which
// failure path produced each partial.
//
// Failure handling, in escalation order: a failed or timed-out task is
// retried with capped exponential backoff, re-routed away from the
// worker that just failed it, and — once its attempt budget is spent —
// counted directly by the coordinator against the underlying relation,
// so a batch always completes if the files are readable. A task whose
// direct scan also fails surfaces one clean error.

// CountTask is one shard slice's share of a batch's fused counting
// schedule: tally every group and pair over global rows [Start, End).
// Boundaries are read from Set; workers never sample. (An out-of-process
// worker transport would serialize the needs and boundaries; the
// in-process pool shares them.)
type CountTask struct {
	Start, End int
	Groups     []*GroupNeed
	Pairs      []*PairNeed
	Set        *StatsSet
}

// Partial is one task's tallies — opaque to callers, exact under
// Merge. Partials from any mix of workers, retries, and direct scans
// merge to the same totals as one serial scan.
type Partial struct {
	st *execState
}

// Merge folds other into p. Tasks must cover disjoint row ranges of
// the same schedule.
func (p *Partial) Merge(other *Partial) { p.st.merge(other.st) }

// Worker executes counting tasks. Implementations must honor ctx —
// returning promptly once it is cancelled — and must build their
// partials from the task's boundaries only, so every worker tallies
// identically. The in-process implementation is NewLocalWorker; a
// process- or network-separated worker implements the same contract
// over a transport.
type Worker interface {
	Count(ctx context.Context, task *CountTask) (*Partial, error)
}

// localWorker counts against a relation in-process.
type localWorker struct {
	rel relation.Relation
	ref bool
}

// NewLocalWorker returns the in-process Worker over rel. ref selects
// the reference per-tuple kernel (Defaults.RefKernel).
func NewLocalWorker(rel relation.Relation, ref bool) Worker {
	return &localWorker{rel: rel, ref: ref}
}

// Count implements Worker: one fused counting scan of the task's row
// range, checking ctx between batches so cancellation and deadlines
// cut a scan short instead of running it to completion.
func (w *localWorker) Count(ctx context.Context, task *CountTask) (*Partial, error) {
	cols, numPos, boolPos := execLayout(task.Groups, task.Pairs)
	st, err := newExecState(task.Set, task.Groups, task.Pairs, numPos, boolPos, w.ref)
	if err != nil {
		return nil, err
	}
	rs, ok := w.rel.(relation.RangeScanner)
	if !ok && (task.Start != 0 || task.End != w.rel.NumTuples()) {
		return nil, fmt.Errorf("plan: worker relation %T cannot scan row ranges", w.rel)
	}
	pred := commonFilterPred(task.Groups, task.Pairs)
	err = prunedOrRange(w.rel, rs, task.Start, task.End, cols, pred, st,
		func(b *relation.Batch) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			st.countBatch(b)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &Partial{st: st}, nil
}

// ScatterStats counts the coordinator's recovery actions — one struct
// per ScatterConfig, written atomically by the worker pool. Tests and
// benchmarks read it to prove faults were actually exercised.
type ScatterStats struct {
	Tasks     atomic.Int64 // tasks scattered
	Retries   atomic.Int64 // failed attempts that were requeued
	Timeouts  atomic.Int64 // attempts cut by TaskTimeout
	Fallbacks atomic.Int64 // tasks the coordinator direct-scanned
}

// ScatterConfig enables and tunes the scatter-gather counting path.
// The zero value disables it: Workers <= 0 keeps the existing serial /
// segmented executors byte-for-byte (the no-regression baseline).
type ScatterConfig struct {
	// Workers is the worker-pool size. 0 disables scatter-gather.
	Workers int
	// NewWorker supplies worker i's implementation; nil uses the
	// in-process NewLocalWorker over the session relation. Tests inject
	// failing, stalling, or remote workers here.
	NewWorker func(i int, rel relation.Relation) Worker
	// TaskTimeout bounds one attempt of one task; a stalled worker is
	// abandoned (its goroutine drains harmlessly) and the task is
	// retried elsewhere. 0 means no per-attempt deadline. Default 30s.
	TaskTimeout time.Duration
	// MaxAttempts is the per-task worker-attempt budget before the
	// coordinator falls back to a direct scan. Default 3.
	MaxAttempts int
	// Backoff is the delay before a task's first retry; each further
	// retry doubles it up to MaxBackoff. Defaults 2ms and 250ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Stats, when non-nil, receives the coordinator's recovery
	// counters.
	Stats *ScatterStats
}

// withDefaults fills the unset tuning knobs.
func (sc ScatterConfig) withDefaults() ScatterConfig {
	if sc.TaskTimeout == 0 {
		sc.TaskTimeout = 30 * time.Second
	}
	if sc.MaxAttempts <= 0 {
		sc.MaxAttempts = 3
	}
	if sc.Backoff <= 0 {
		sc.Backoff = 2 * time.Millisecond
	}
	if sc.MaxBackoff <= 0 {
		sc.MaxBackoff = 250 * time.Millisecond
	}
	if sc.Stats == nil {
		sc.Stats = &ScatterStats{}
	}
	return sc
}

// useScatter reports whether the scatter-gather coordinator should run
// this counting scan: workers enabled, an integer-exact schedule
// (float target sums stay serial so their addition order never depends
// on segmentation — the scanParallelism rule), and a range-scannable,
// non-empty relation.
func useScatter(rel relation.Relation, d Defaults, groups []*GroupNeed) bool {
	if d.Scatter.Workers <= 0 {
		return false
	}
	for _, g := range groups {
		if len(g.Targets) > 0 {
			return false
		}
	}
	if _, ok := rel.(relation.RangeScanner); !ok {
		return false
	}
	return rel.NumTuples() > 0
}

// scatterCuts picks the task boundaries: exact shard boundaries on a
// sharded relation (one task per non-empty shard — the scatter-gather
// unit of ROADMAP item 3, and the retry/fallback granularity), cost-
// balanced storage-aligned chunks elsewhere. On single-file v3 storage
// the chunks are priced from the zone maps under the schedule's
// pushdown predicate, so tasks covering pruned regions span many rows
// and tasks covering surviving groups stay small — the already-dynamic
// task queue then load-balances them across the pool.
func scatterCuts(rel relation.Relation, workers int, cols relation.ColumnSet, pred *relation.Predicate) []int {
	n := rel.NumTuples()
	if sr, ok := rel.(*relation.ShardedRelation); ok {
		cuts := []int{0}
		for _, s := range sr.ShardStarts()[1:] {
			if s > cuts[len(cuts)-1] { // merge empty shards
				cuts = append(cuts, s)
			}
		}
		if cuts[len(cuts)-1] != n {
			cuts = append(cuts, n)
		}
		return cuts
	}
	if workers > n {
		workers = n
	}
	chunks := relation.PlanScanChunks(rel, workers, cols, pred)
	cuts := make([]int, 0, len(chunks)+1)
	cuts = append(cuts, 0)
	for _, c := range chunks {
		cuts = append(cuts, c.End)
	}
	return cuts
}

// scatterTask is one task's scheduling state. A task is owned by
// exactly one worker goroutine at a time (the queue hands it over), so
// attempts/lastWorker/lastErr need no locking beyond the atomics used
// for the cross-worker re-route check.
type scatterTask struct {
	idx        int
	attempts   int
	lastWorker atomic.Int32
	lastErr    error
	done       bool
}

// countScatter scatters the schedule, gathers the partials, merges
// them in task order, and publishes into set.
func countScatter(ctx context.Context, rel relation.Relation, d Defaults, set *StatsSet,
	groups []*GroupNeed, pairs []*PairNeed) error {
	sc := d.Scatter.withDefaults()
	scanCols, _, _ := execLayout(groups, pairs)
	cuts := scatterCuts(rel, sc.Workers, scanCols, commonFilterPred(groups, pairs))
	nTasks := len(cuts) - 1
	if nTasks < 1 {
		return countGeneral(ctx, rel, set, groups, pairs, 1, d.RefKernel)
	}
	workers := make([]Worker, sc.Workers)
	for i := range workers {
		if sc.NewWorker != nil {
			workers[i] = sc.NewWorker(i, rel)
		} else {
			workers[i] = NewLocalWorker(rel, d.RefKernel)
		}
	}

	tasks := make([]*scatterTask, nTasks)
	partials := make([]*Partial, nTasks)
	queue := make(chan *scatterTask, nTasks) // never blocks: one slot per task
	for i := range tasks {
		t := &scatterTask{idx: i}
		t.lastWorker.Store(-1)
		tasks[i] = t
		queue <- t
	}
	sc.Stats.Tasks.Add(int64(nTasks))

	var pending atomic.Int64
	pending.Store(int64(nTasks))
	settled := make(chan struct{}) // closed when every task succeeded or exhausted its attempts
	var settleOnce sync.Once
	settle := func() {
		if pending.Add(-1) == 0 {
			settleOnce.Do(func() { close(settled) })
		}
	}

	makeTask := func(t *scatterTask) *CountTask {
		return &CountTask{Start: cuts[t.idx], End: cuts[t.idx+1], Groups: groups, Pairs: pairs, Set: set}
	}

	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-settled:
					return
				case <-ctx.Done():
					return
				case t := <-queue:
					// Re-route: don't immediately re-attempt a task on the
					// worker that just failed it while others could take it.
					if len(workers) > 1 && t.lastWorker.Load() == int32(i) {
						queue <- t // capacity nTasks: never blocks
						time.Sleep(time.Millisecond)
						continue
					}
					p, err := attemptTask(ctx, workers[i], makeTask(t), sc.TaskTimeout)
					if err == nil {
						partials[t.idx] = p
						t.done = true
						settle()
						continue
					}
					if ctx.Err() != nil {
						return
					}
					if errors.Is(err, context.DeadlineExceeded) {
						sc.Stats.Timeouts.Add(1)
					}
					t.lastWorker.Store(int32(i))
					t.attempts++
					t.lastErr = err
					if t.attempts >= sc.MaxAttempts {
						settle() // direct-scan fallback picks it up
						continue
					}
					sc.Stats.Retries.Add(1)
					backoff := sc.Backoff << (t.attempts - 1)
					if backoff > sc.MaxBackoff {
						backoff = sc.MaxBackoff
					}
					time.Sleep(backoff)
					queue <- t
				}
			}
		}(i)
	}

	select {
	case <-settled:
	case <-ctx.Done():
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("plan: counting: %w", err)
	}

	// Last resort: the coordinator counts exhausted tasks itself,
	// straight off the relation — the batch completes whenever the
	// underlying files are readable, no matter how broken the pool is.
	direct := NewLocalWorker(rel, d.RefKernel)
	for _, t := range tasks {
		if t.done {
			continue
		}
		sc.Stats.Fallbacks.Add(1)
		p, err := direct.Count(ctx, makeTask(t))
		if err != nil {
			return fmt.Errorf("plan: counting rows [%d,%d): %w (after %d worker attempts, last: %v)",
				cuts[t.idx], cuts[t.idx+1], err, t.attempts, t.lastErr)
		}
		partials[t.idx] = p
	}

	// Gather: merge in fixed task order. Integer-exact statistics make
	// the fold independent of which worker produced which partial.
	total := partials[0]
	for _, p := range partials[1:] {
		total.Merge(p)
	}
	total.st.publish(set)
	return nil
}

// attemptTask runs one attempt of one task under the per-attempt
// deadline. A worker that outlives its deadline is abandoned: its
// goroutine finishes into a buffered channel and is garbage collected,
// and its partial — built on private state — is discarded, never
// merged.
func attemptTask(ctx context.Context, w Worker, task *CountTask, timeout time.Duration) (*Partial, error) {
	actx := ctx
	cancel := func() {}
	if timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	type result struct {
		p   *Partial
		err error
	}
	ch := make(chan result, 1)
	go func() {
		p, err := w.Count(actx, task)
		ch <- result{p, err}
	}()
	select {
	case r := <-ch:
		return r.p, r.err
	case <-actx.Done():
		return nil, actx.Err()
	}
}
