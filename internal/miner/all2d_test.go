package miner

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// diskOfFormat materializes the same deterministic tuple stream onto
// disk in the requested format version, so the 2-D differential tests
// cover the row-major v1 and columnar v2 out-of-core paths with
// bit-identical data.
func diskOfFormat(t *testing.T, src datagen.RowSource, n int, seed int64, version int) *relation.DiskRelation {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rel.opr")
	if err := datagen.WriteDiskFormat(path, src, n, seed, version); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	return dr
}

// twoDimRelations yields the bank and retail generators over memory,
// v1 disk, and v2 disk backends — six relations with identical tuples
// per generator.
func twoDimRelations(t *testing.T, n int) map[string]relation.Relation {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]relation.Relation{}
	for name, gen := range map[string]datagen.RowSource{"bank": bank, "retail": retail} {
		mem, err := datagen.Materialize(gen, n, 42)
		if err != nil {
			t.Fatal(err)
		}
		rels[name+"/memory"] = mem
		rels[name+"/diskv1"] = diskOfFormat(t, gen, n, 42, relation.DiskFormatV1)
		rels[name+"/diskv2"] = diskOfFormat(t, gen, n, 42, relation.DiskFormatV2)
	}
	return rels
}

// TestMine2DFusedMatchesPerPair pins the rebuilt Mine2D (fused
// sampling + parallel kernels, two scans) rule-for-rule identical to
// the legacy per-pair pipeline (two sampling passes + serial kernels,
// three scans) across generators, storage backends, and rule kinds.
func TestMine2DFusedMatchesPerPair(t *testing.T) {
	cfg := Config{MinSupport: 0.02, MinConfidence: 0.5, Seed: 7}
	for name, rel := range twoDimRelations(t, 6000) {
		s := rel.Schema()
		nums := s.NumericIndices()
		a, b := s[nums[0]].Name, s[nums[1]].Name
		obj := s[s.BooleanIndices()[0]].Name
		for _, kind := range []RuleKind{OptimizedSupport, OptimizedConfidence, OptimizedGain} {
			fused, err := Mine2D(rel, a, b, obj, true, kind, 24, cfg)
			if err != nil {
				t.Fatalf("%s/%v: fused: %v", name, kind, err)
			}
			legacy, err := Mine2DPerPair(rel, a, b, obj, true, kind, 24, cfg)
			if err != nil {
				t.Fatalf("%s/%v: legacy: %v", name, kind, err)
			}
			if !reflect.DeepEqual(fused, legacy) {
				t.Errorf("%s/%v:\nfused:  %+v\nlegacy: %+v", name, kind, fused, legacy)
			}
		}
	}
}

// TestRegionFusedMatchesPerPair does the same for the x-monotone and
// rectilinear-convex gain DPs.
func TestRegionFusedMatchesPerPair(t *testing.T) {
	cfg := Config{MinConfidence: 0.4, Seed: 11}
	for name, rel := range twoDimRelations(t, 5000) {
		s := rel.Schema()
		nums := s.NumericIndices()
		a, b := s[nums[0]].Name, s[nums[1]].Name
		obj := s[s.BooleanIndices()[0]].Name
		for _, class := range []RegionClass{XMonotoneClass, RectilinearConvexClass} {
			var fused, legacy *RegionRule
			var err error
			switch class {
			case XMonotoneClass:
				fused, err = MineXMonotone(rel, a, b, obj, true, 16, cfg)
			default:
				fused, err = MineRectilinearConvex(rel, a, b, obj, true, 16, cfg)
			}
			if err != nil {
				t.Fatalf("%s/%v: fused: %v", name, class, err)
			}
			legacy, err = mineRegionPerPair(rel, a, b, obj, true, 16, cfg, class)
			if err != nil {
				t.Fatalf("%s/%v: legacy: %v", name, class, err)
			}
			if !reflect.DeepEqual(fused, legacy) {
				t.Errorf("%s/%v:\nfused:  %+v\nlegacy: %+v", name, class, fused, legacy)
			}
			if legacy == nil {
				t.Logf("%s/%v: no region with positive gain (still a valid differential point)", name, class)
			}
		}
	}
}

// TestMineAll2DMatchesPerPairUnion pins the all-pairs engine against
// the union of legacy per-pair results: every (pair, kind) rectangle
// and every (pair, class) region must appear, identically, and nothing
// else.
func TestMineAll2DMatchesPerPairUnion(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 8000, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Schema()
	var names []string
	for _, i := range s.NumericIndices() {
		names = append(names, s[i].Name)
	}
	obj := s[s.BooleanIndices()[0]].Name
	cfg := Config{MinSupport: 0.02, MinConfidence: 0.5, Seed: 3}
	kinds := []RuleKind{OptimizedSupport, OptimizedConfidence, OptimizedGain}
	classes := []RegionClass{XMonotoneClass, RectilinearConvexClass}

	res, err := MineAll2D(rel, Options2D{
		Numerics: names, Objective: obj, ObjectiveValue: true,
		Kinds: kinds, Regions: classes, GridSide: 16,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wantPairs := len(names) * (len(names) - 1) / 2; res.Pairs != wantPairs {
		t.Errorf("Pairs = %d, want %d", res.Pairs, wantPairs)
	}

	var wantRules []Rule2D
	var wantRegions []RegionRule
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			for _, kind := range kinds {
				r, err := Mine2DPerPair(rel, names[i], names[j], obj, true, kind, 16, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if r != nil {
					wantRules = append(wantRules, *r)
				}
			}
			for _, class := range classes {
				r, err := mineRegionPerPair(rel, names[i], names[j], obj, true, 16, cfg, class)
				if err != nil {
					t.Fatal(err)
				}
				if r != nil {
					wantRegions = append(wantRegions, *r)
				}
			}
		}
	}
	if len(wantRules) == 0 || len(wantRegions) == 0 {
		t.Fatalf("degenerate differential test: %d rules, %d regions from the legacy path",
			len(wantRules), len(wantRegions))
	}
	if len(res.Rules) != len(wantRules) {
		t.Fatalf("MineAll2D mined %d rectangle rules, legacy union %d", len(res.Rules), len(wantRules))
	}
	// MineAll2D sorts by lift; match rules by identity regardless of order.
	for _, want := range wantRules {
		found := false
		for _, got := range res.Rules {
			if reflect.DeepEqual(got, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("legacy rule missing from MineAll2D: %+v", want)
		}
	}
	if len(res.Regions) != len(wantRegions) {
		t.Fatalf("MineAll2D mined %d region rules, legacy union %d", len(res.Regions), len(wantRegions))
	}
	for _, want := range wantRegions {
		found := false
		for _, got := range res.Regions {
			if reflect.DeepEqual(got, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("legacy region missing from MineAll2D: %+v", want)
		}
	}
	// Sort invariants.
	for i := 1; i < len(res.Rules); i++ {
		if res.Rules[i-1].Lift() < res.Rules[i].Lift() {
			t.Errorf("Rules not sorted by lift at %d", i)
		}
	}
	for i := 1; i < len(res.Regions); i++ {
		if res.Regions[i-1].Gain < res.Regions[i].Gain {
			t.Errorf("Regions not sorted by gain at %d", i)
		}
	}
}

// TestMine2DFusedMatchesPerPairNaN pins the NaN corner: a tuple joins
// a pair's grid (and its value-range extremes) only when BOTH values
// are finite, so per-pair extreme tracking must match the legacy
// path's row filtering exactly.
func TestMine2DFusedMatchesPerPairNaN(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Numeric},
		{Name: "Hit", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 9000; i++ {
		a := rng.Float64() * 100
		b := rng.Float64() * 10
		c := rng.NormFloat64()
		if i%7 == 0 {
			b = math.NaN()
		}
		if i%11 == 0 {
			c = math.NaN()
		}
		hot := a > 30 && a < 60 && b > 2 && b < 5
		rel.MustAppend([]float64{a, b, c}, []bool{hot && rng.Float64() < 0.8 || rng.Float64() < 0.05})
	}
	cfg := Config{MinSupport: 0.02, MinConfidence: 0.5, Seed: 9}
	for _, pair := range [][2]string{{"A", "B"}, {"B", "C"}, {"A", "C"}} {
		for _, kind := range []RuleKind{OptimizedSupport, OptimizedConfidence, OptimizedGain} {
			fused, err := Mine2D(rel, pair[0], pair[1], "Hit", true, kind, 20, cfg)
			if err != nil {
				t.Fatalf("%v/%v fused: %v", pair, kind, err)
			}
			legacy, err := Mine2DPerPair(rel, pair[0], pair[1], "Hit", true, kind, 20, cfg)
			if err != nil {
				t.Fatalf("%v/%v legacy: %v", pair, kind, err)
			}
			if !reflect.DeepEqual(fused, legacy) {
				t.Errorf("%v/%v:\nfused:  %+v\nlegacy: %+v", pair, kind, fused, legacy)
			}
		}
	}
}

// TestMineAll2DTwoScans pins the fused 2-D pipeline's cost model: over
// a relation with d numeric attributes (d(d−1)/2 pairs), MineAll2D
// performs exactly one sampling scan plus one counting scan, while the
// legacy per-pair path pays three scans per pair.
func TestMineAll2DTwoScans(t *testing.T) {
	for _, numAttrs := range []int{4, 6} {
		shape, err := datagen.NewPerfShape(numAttrs, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		disk := diskOfFormat(t, shape, 6000, 9, relation.DiskFormatV2)
		s := disk.Schema()
		obj := s[s.BooleanIndices()[0]].Name
		counting := &relation.CountingRelation{R: disk}
		res, err := MineAll2D(counting, Options2D{Objective: obj, ObjectiveValue: true, GridSide: 16}, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pairs := numAttrs * (numAttrs - 1) / 2
		if res.Pairs != pairs {
			t.Errorf("attrs=%d: Pairs = %d, want %d", numAttrs, res.Pairs, pairs)
		}
		if len(res.Rules) == 0 {
			t.Errorf("attrs=%d: no rules mined", numAttrs)
		}
		if counting.Scans != 2 {
			t.Errorf("attrs=%d: MineAll2D issued %d scans, want exactly 2 (sampling + counting)",
				numAttrs, counting.Scans)
		}
		// The sampling scan may abort early once every sample index is
		// satisfied, so total rows delivered are at most two full passes.
		if max := int64(2 * disk.NumTuples()); counting.Rows > max {
			t.Errorf("attrs=%d: scans delivered %d rows, want <= %d", numAttrs, counting.Rows, max)
		}
		// The legacy path costs 3 scans PER PAIR on the same relation —
		// the gap the fused engine exists to close.
		countingLegacy := &relation.CountingRelation{R: disk}
		nums := s.NumericIndices()
		for i := 0; i < len(nums); i++ {
			for j := i + 1; j < len(nums); j++ {
				if _, err := Mine2DPerPair(countingLegacy, s[nums[i]].Name, s[nums[j]].Name,
					obj, true, OptimizedConfidence, 16, Config{Seed: 1}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if want := 3 * pairs; countingLegacy.Scans != want {
			t.Errorf("attrs=%d: legacy issued %d scans, want %d", numAttrs, countingLegacy.Scans, want)
		}
	}
}

// TestMineAll2DSingleRegionOnly covers the explicit-empty-Kinds path:
// regions only, no rectangles.
func TestMineAll2DSingleRegionOnly(t *testing.T) {
	rel := planted2DRelation(t, 20000)
	res, err := MineAll2D(rel, Options2D{
		Numerics: []string{"Age", "Balance"}, Objective: "CardLoan", ObjectiveValue: true,
		Kinds: []RuleKind{}, Regions: []RegionClass{XMonotoneClass}, GridSide: 16,
	}, Config{MinConfidence: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 0 {
		t.Errorf("explicit empty Kinds still mined %d rectangles", len(res.Rules))
	}
	if len(res.Regions) != 1 {
		t.Fatalf("want 1 x-monotone region, got %d", len(res.Regions))
	}
	if res.Regions[0].Class != XMonotoneClass || res.Regions[0].Gain <= 0 {
		t.Errorf("bad region: %+v", res.Regions[0])
	}
}

// TestMineAll2DValidation covers the request validation surface.
func TestMineAll2DValidation(t *testing.T) {
	rel := planted2DRelation(t, 200)
	obj := "CardLoan"
	cases := []Options2D{
		{Numerics: []string{"Age"}, Objective: obj},                                                    // one attribute
		{Numerics: []string{"Age", "Nope"}, Objective: obj},                                            // unknown attribute
		{Numerics: []string{"Age", "Age"}, Objective: obj},                                             // duplicate
		{Numerics: []string{"Age", "Balance"}, Objective: "Nope"},                                      // unknown objective
		{Numerics: []string{"Age", "Balance"}, Objective: "Age"},                                       // non-Boolean objective
		{Numerics: []string{"Age", "Balance"}, Objective: obj, GridSide: -2},                           // bad side
		{Numerics: []string{"Age", "Balance"}, Objective: obj, Kinds: []RuleKind{RuleKind(9)}},         // bad kind
		{Numerics: []string{"Age", "Balance"}, Objective: obj, Regions: []RegionClass{RegionClass(9)}}, // bad class
		{Numerics: []string{"Age", "Balance"}, Objective: obj, Regions: []RegionClass{RectangleClass}}, // rect via Regions
	}
	for i, opt := range cases {
		if _, err := MineAll2D(rel, opt, Config{}); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, opt)
		}
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := MineAll2D(empty, Options2D{Objective: obj}, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
}
