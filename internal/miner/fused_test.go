package miner

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// diskOf materializes the same deterministic tuple stream Materialize
// would produce onto disk, so fused-path tests cover the out-of-core
// relation with bit-identical data.
func diskOf(t *testing.T, src datagen.RowSource, n int, seed int64) *relation.DiskRelation {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rel.opr")
	if err := datagen.WriteDisk(path, src, n, seed); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Remove(path) })
	return dr
}

// sameRules requires rule-for-rule identity, including floating-point
// fields: the fused pipeline draws bit-identical samples and counts in
// the same row order, so results must not merely be close — they must
// be equal.
func sameRules(t *testing.T, name string, fused, legacy *Result) {
	t.Helper()
	if len(fused.Rules) != len(legacy.Rules) {
		t.Fatalf("%s: fused mined %d rules, legacy %d", name, len(fused.Rules), len(legacy.Rules))
	}
	for i := range fused.Rules {
		if !reflect.DeepEqual(fused.Rules[i], legacy.Rules[i]) {
			t.Errorf("%s: rule %d differs:\nfused:  %+v\nlegacy: %+v",
				name, i, fused.Rules[i], legacy.Rules[i])
		}
	}
}

func TestMineAllFusedMatchesLegacy(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	gens := []struct {
		name string
		gen  datagen.RowSource
	}{{"bank", bank}, {"retail", retail}}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{Buckets: 120, Seed: 7}},
		{"negations+gain", Config{Buckets: 80, Seed: 3, MineNegations: true, MineGain: true}},
		{"exact-domains", Config{Buckets: 60, Seed: 11, ExactDomainLimit: 100}},
		{"parallel-pes", Config{Buckets: 90, Seed: 5, PEs: 4}},
		{"single-bucket", Config{Buckets: 1, Seed: 2}},
	}
	for _, g := range gens {
		mem, err := datagen.Materialize(g.gen, 8000, 42)
		if err != nil {
			t.Fatal(err)
		}
		disk := diskOf(t, g.gen, 8000, 42)
		for _, c := range cfgs {
			fusedMem, err := MineAll(mem, c.cfg)
			if err != nil {
				t.Fatalf("%s/%s: fused memory: %v", g.name, c.name, err)
			}
			legacy, err := mineAllPerAttribute(mem, c.cfg)
			if err != nil {
				t.Fatalf("%s/%s: legacy: %v", g.name, c.name, err)
			}
			sameRules(t, g.name+"/"+c.name+"/memory", fusedMem, legacy)
			if len(legacy.Rules) == 0 {
				t.Errorf("%s/%s: degenerate differential test, no rules mined", g.name, c.name)
			}

			fusedDisk, err := MineAll(disk, c.cfg)
			if err != nil {
				t.Fatalf("%s/%s: fused disk: %v", g.name, c.name, err)
			}
			sameRules(t, g.name+"/"+c.name+"/disk", fusedDisk, legacy)
		}
	}
}

// TestMineAllFusedMatchesLegacyNaNExactDomains pins the hard identity
// corner: a small-domain attribute polluted with NaNs must not get
// finest buckets on EITHER path (NaN can't be a well-ordered cut), so
// both fall back to sampled boundaries and stay rule-identical.
func TestMineAllFusedMatchesLegacyNaNExactDomains(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "Grade", Kind: relation.Numeric}, // 6 distinct values + NaNs
		{Name: "Score", Kind: relation.Numeric},
		{Name: "Pass", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 6000; i++ {
		grade := float64(i % 6)
		if i%11 == 0 {
			grade = math.NaN()
		}
		rel.MustAppend([]float64{grade, rng.Float64() * 100}, []bool{grade >= 3 || rng.Intn(4) == 0})
	}
	cfg := Config{Buckets: 40, Seed: 9, ExactDomainLimit: 50}
	fused, err := MineAll(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := mineAllPerAttribute(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameRules(t, "nan-exact-domains", fused, legacy)
	if len(legacy.Rules) == 0 {
		t.Error("degenerate test: no rules mined")
	}
}

// TestMineAllTwoScansOnDisk pins the fused pipeline's cost model: over
// a disk relation, MineAll performs exactly one sampling scan plus one
// counting scan regardless of the number of numeric attributes.
func TestMineAllTwoScansOnDisk(t *testing.T) {
	for _, numAttrs := range []int{1, 3, 8} {
		shape, err := datagen.NewPerfShape(numAttrs, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		disk := diskOf(t, shape, 5000, 9)
		counting := &relation.CountingRelation{R: disk}
		res, err := MineAll(counting, Config{Buckets: 100, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rules) == 0 {
			t.Errorf("attrs=%d: no rules mined", numAttrs)
		}
		if counting.Scans != 2 {
			t.Errorf("attrs=%d: MineAll issued %d scans, want exactly 2 (sampling + counting)",
				numAttrs, counting.Scans)
		}
		// The sampling scan may abort early once every sample index is
		// satisfied, so total rows delivered are at most two full passes.
		if max := int64(2 * disk.NumTuples()); counting.Rows > max {
			t.Errorf("attrs=%d: scans delivered %d rows, want <= %d (two full passes)",
				numAttrs, counting.Rows, max)
		}
		// The legacy path must cost d+1 scans on the same relation — the
		// gap the fused engine exists to close.
		countingLegacy := &relation.CountingRelation{R: disk}
		if _, err := mineAllPerAttribute(countingLegacy, Config{Buckets: 100, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if want := 2 * numAttrs; countingLegacy.Scans != want {
			t.Errorf("attrs=%d: legacy issued %d scans, want %d", numAttrs, countingLegacy.Scans, want)
		}
	}
}

// TestMineAllTwoScansExactDomains: finest-bucket detection rides the
// sampling scan, so ExactDomainLimit must not add passes.
func TestMineAllTwoScansExactDomains(t *testing.T) {
	rel, err := datagen.Materialize(mustBank(t), 4000, 21)
	if err != nil {
		t.Fatal(err)
	}
	counting := &relation.CountingRelation{R: rel}
	res, err := MineAll(counting, Config{Buckets: 100, Seed: 1, ExactDomainLimit: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Error("no rules mined")
	}
	if counting.Scans != 2 {
		t.Errorf("MineAll with ExactDomainLimit issued %d scans, want exactly 2", counting.Scans)
	}
}

func mustBank(t *testing.T) datagen.RowSource {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return bank
}
