package miner

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"optrule/internal/bucketing"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// The fused 2-D engine. The paper's §1.4 extension buckets TWO numeric
// attributes into a grid and optimizes a region over it; mining it for
// every attribute pair of a wide relation is the 2-D analogue of the
// "complete set of optimized rules" workload, and the same premise
// applies: the database is far larger than main memory, so sequential
// passes are the currency of performance. MineAll2D reads the relation
// exactly TWICE no matter how many pairs it mines:
//
//  1. one fused sampling scan (sampling.MultiColumnWithReplacement via
//     bucketing.MultiSampledBoundaries) draws every attribute's
//     Algorithm 3.1 sample and builds per-attribute grid boundaries —
//     the same per-attribute random streams the 1-D pipeline and the
//     legacy per-pair path consume, so boundaries are bit-identical;
//  2. one fused counting scan locates each tuple's bucket ONCE per
//     attribute and then fills all d(d−1)/2 pair grids. On relations
//     that support range scans the counting scan is segmented across
//     workers with boundaries snapped to the storage layer's block
//     groups (relation.AlignedSegments), each worker filling private
//     grids that are merged at the end — grid cells are integer
//     counts, so the merge is exact and the result is identical to a
//     serial scan. The scan's ColumnSet selects only the
//     participating columns, so the v2 columnar format reads just
//     those column blocks.
//
// The region kernels (rectangle sweep, x-monotone and rectilinear-
// convex DPs) then run on the in-memory grids, fanned out over a
// worker pool across (pair, kind) tasks, each task using the parallel
// region kernels for whatever share of the pool it gets.

// Options2D selects what MineAll2D mines.
type Options2D struct {
	// Numerics names the numeric attributes to pair up; every
	// unordered pair of distinct entries gets a grid. nil selects all
	// numeric attributes of the relation. At least two are required.
	Numerics []string
	// Objective is the Boolean objective attribute C; required.
	Objective string
	// ObjectiveValue is the required value of C (true = yes).
	ObjectiveValue bool
	// Kinds lists the rectangle-rule kinds to mine per pair. nil
	// selects the two paper-standard kinds (OptimizedSupport,
	// OptimizedConfidence); an explicit empty slice mines no
	// rectangles (useful when only region classes are wanted).
	Kinds []RuleKind
	// Regions lists non-rectangular §1.4 region classes to also mine
	// per pair (XMonotoneClass, RectilinearConvexClass).
	Regions []RegionClass
	// GridSide is the per-axis bucket count (0 = DefaultGridSide). The
	// rectangle sweep is O(side³) per pair: sides up to 256 are
	// practical for a handful of pairs, smaller sides for wide
	// all-pairs sweeps.
	GridSide int
}

// Result2D is the output of MineAll2D.
type Result2D struct {
	// Rules are the mined rectangle rules, sorted by descending lift.
	Rules []Rule2D
	// Regions are the mined non-rectangular region rules, sorted by
	// descending gain.
	Regions []RegionRule
	// Pairs is the number of attribute pairs actually mined; pairs
	// with no tuple where both attributes are finite are skipped and
	// not counted.
	Pairs  int
	Tuples int
	Config Config
}

// MineAll2D mines 2-D optimized rules for every unordered pair of the
// requested numeric attributes in exactly two relation scans (one
// fused sampling scan, one fused counting scan — see the package notes
// above). Pairs with no tuple where both attributes are finite are
// skipped. Output is rule-for-rule identical to running the legacy
// per-pair pipeline (Mine2DPerPair) for each pair and kind.
func MineAll2D(rel relation.Relation, opt Options2D, cfg Config) (*Result2D, error) {
	eng, err := newEngine2D(rel, opt, cfg)
	if err != nil {
		return nil, err
	}
	return eng.mineAll()
}

// pair2D is one attribute pair's grid and statistics: rows bucket the
// first attribute, columns the second, and the observed per-bucket
// value extremes translate bucket ranges back to closed value ranges.
// A tuple counts toward a pair iff BOTH its values are finite, so the
// extremes are tracked per pair, not per attribute — exactly the
// legacy per-pair semantics. The counting kernel writes cells through
// the grid's flat backing (gu/gv); n and hits are derived from the
// merged grid afterwards so the hot loop maintains no extra counters.
type pair2D struct {
	ai, bi int // indices into the engine's attribute list
	grid   *region.Grid
	gu     []int     // grid.Flat() backing, row-major
	gv     []float64 //
	cols   int
	minA   []float64
	maxA   []float64
	minB   []float64
	maxB   []float64
	n      int // tuples with both values finite (set after the scan)
	hits   int // of those, tuples meeting the objective (set after the scan)
}

// engine2D carries the fused pipeline's state from the two scans to
// the kernel phase.
type engine2D struct {
	rel     relation.Relation
	cfg     Config
	opt     Options2D
	attrs   []int    // schema positions of opt.Numerics
	names   []string // resolved attribute names
	objAttr int
	side    int
	bounds  []bucketing.Boundaries
	pairs   []pair2D
}

// newEngine2D validates the request and runs both fused scans.
func newEngine2D(rel relation.Relation, opt Options2D, cfg Config) (*engine2D, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	side := opt.GridSide
	if side == 0 {
		side = DefaultGridSide
	}
	if side < 1 {
		return nil, fmt.Errorf("miner: grid side %d must be positive", opt.GridSide)
	}
	s := rel.Schema()
	names := opt.Numerics
	if names == nil {
		for _, i := range s.NumericIndices() {
			names = append(names, s[i].Name)
		}
	}
	if len(names) < 2 {
		return nil, fmt.Errorf("miner: 2-D mining needs at least two numeric attributes, got %d", len(names))
	}
	attrs := make([]int, len(names))
	seen := make(map[int]bool, len(names))
	for k, name := range names {
		a := s.Index(name)
		if a < 0 || s[a].Kind != relation.Numeric {
			return nil, fmt.Errorf("miner: %q is not a numeric attribute", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("miner: the two numeric attributes must differ")
		}
		seen[a] = true
		attrs[k] = a
	}
	objAttr := s.Index(opt.Objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, fmt.Errorf("miner: %q is not a Boolean attribute", opt.Objective)
	}
	if opt.Kinds == nil {
		opt.Kinds = []RuleKind{OptimizedSupport, OptimizedConfidence}
	}
	for _, kind := range opt.Kinds {
		switch kind {
		case OptimizedSupport, OptimizedConfidence, OptimizedGain:
		default:
			return nil, fmt.Errorf("miner: unknown rule kind %v", kind)
		}
	}
	for _, class := range opt.Regions {
		switch class {
		case XMonotoneClass, RectilinearConvexClass:
		case RectangleClass:
			return nil, fmt.Errorf("miner: rectangles are mined via Kinds, not Regions")
		default:
			return nil, fmt.Errorf("miner: unknown region class %v", class)
		}
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}

	eng := &engine2D{
		rel: rel, cfg: cfg, opt: opt,
		attrs: attrs, names: names, objAttr: objAttr, side: side,
	}
	if err := eng.sampleBoundaries(); err != nil {
		return nil, err
	}
	if err := eng.countGrids(); err != nil {
		return nil, err
	}
	return eng, nil
}

// sampleBoundaries is scan 1: every attribute's equi-depth grid
// boundaries from one fused sampling pass, on the per-attribute
// streams the legacy path used.
func (e *engine2D) sampleBoundaries() error {
	rngs := make([]*rand.Rand, len(e.attrs))
	for k, attr := range e.attrs {
		rngs[k] = attrRNG(e.cfg.Seed, attr)
	}
	bounds, err := bucketing.MultiSampledBoundaries(e.rel, e.attrs, e.side, e.cfg.SampleFactor, 0, rngs)
	if err != nil {
		return err
	}
	e.bounds = bounds
	return nil
}

// gridWork is one counting worker's private tally state: a grid and
// extreme arrays per pair, plus the per-batch bucket-index scratch.
type gridWork struct {
	pairs []pair2D
	idx   [][]int32 // per attribute: bucket index per batch row, −1 for NaN
}

func (e *engine2D) newGridWork() (*gridWork, error) {
	w := &gridWork{
		pairs: make([]pair2D, 0, len(e.attrs)*(len(e.attrs)-1)/2),
		idx:   make([][]int32, len(e.attrs)),
	}
	for i := 0; i < len(e.attrs); i++ {
		for j := i + 1; j < len(e.attrs); j++ {
			g, err := region.NewGrid(e.bounds[i].NumBuckets(), e.bounds[j].NumBuckets())
			if err != nil {
				return nil, err
			}
			gu, gv, ok := g.Flat()
			if !ok {
				return nil, fmt.Errorf("miner: grid misses its flat backing")
			}
			p := pair2D{
				ai: i, bi: j, grid: g,
				gu: gu, gv: gv, cols: g.Cols(),
				minA: make([]float64, e.bounds[i].NumBuckets()),
				maxA: make([]float64, e.bounds[i].NumBuckets()),
				minB: make([]float64, e.bounds[j].NumBuckets()),
				maxB: make([]float64, e.bounds[j].NumBuckets()),
			}
			for r := range p.minA {
				p.minA[r], p.maxA[r] = math.Inf(1), math.Inf(-1)
			}
			for c := range p.minB {
				p.minB[c], p.maxB[c] = math.Inf(1), math.Inf(-1)
			}
			w.pairs = append(w.pairs, p)
		}
	}
	return w, nil
}

// countBatch tallies one batch into every pair's grid. Each tuple's
// bucket is located ONCE per attribute (not once per pair); the pair
// loops then run tight index arithmetic over the precomputed bucket
// rows, which is what makes all-pairs counting cost d locates plus
// d(d−1)/2 cell increments per tuple instead of d(d−1) locates.
func (w *gridWork) countBatch(b *relation.Batch, bounds []bucketing.Boundaries, want bool) {
	n := b.Len
	obj := b.Bool[0]
	for k := range bounds {
		if cap(w.idx[k]) < n {
			w.idx[k] = make([]int32, n)
		}
		// NaN values locate to −1: the tuple joins no pair using
		// attribute k.
		bounds[k].LocateBatch(b.Numeric[k][:n], w.idx[k][:n])
	}
	for p := range w.pairs {
		pr := &w.pairs[p]
		ia := w.idx[pr.ai][:n]
		ib := w.idx[pr.bi][:n]
		colA := b.Numeric[pr.ai]
		colB := b.Numeric[pr.bi]
		gu, gv, cols := pr.gu, pr.gv, pr.cols
		minA, maxA := pr.minA, pr.maxA
		minB, maxB := pr.minB, pr.maxB
		for row := 0; row < n; row++ {
			ri := int(ia[row])
			if ri < 0 {
				continue
			}
			rj := int(ib[row])
			if rj < 0 {
				continue
			}
			idx := ri*cols + rj
			gu[idx]++
			// Flagless objective tally (as in the 1-D counting kernel):
			// the objective bit is ~50% either way, so a conditional
			// increment would mispredict constantly.
			e := 0.0
			if obj[row] == want {
				e = 1
			}
			gv[idx] += e
			a := colA[row]
			if a < minA[ri] {
				minA[ri] = a
			}
			if a > maxA[ri] {
				maxA[ri] = a
			}
			bv := colB[row]
			if bv < minB[rj] {
				minB[rj] = bv
			}
			if bv > maxB[rj] {
				maxB[rj] = bv
			}
		}
	}
}

// merge folds other's tallies into w. All statistics are integer
// counts or min/max extremes, so the merged state is exactly the
// serial scan's regardless of how rows were segmented.
func (w *gridWork) merge(other *gridWork) error {
	for p := range w.pairs {
		pr, op := &w.pairs[p], &other.pairs[p]
		if err := pr.grid.Merge(op.grid); err != nil {
			return err
		}
		for i := range pr.minA {
			if op.minA[i] < pr.minA[i] {
				pr.minA[i] = op.minA[i]
			}
			if op.maxA[i] > pr.maxA[i] {
				pr.maxA[i] = op.maxA[i]
			}
		}
		for i := range pr.minB {
			if op.minB[i] < pr.minB[i] {
				pr.minB[i] = op.minB[i]
			}
			if op.maxB[i] > pr.maxB[i] {
				pr.maxB[i] = op.maxB[i]
			}
		}
	}
	return nil
}

// countGrids is scan 2: fill all pair grids in one pass over the
// participating columns only. On range-scanning relations the pass is
// segmented across workers at block-group-aligned boundaries; private
// worker grids are merged afterwards (exactly — integer counts), so
// segmentation never changes results.
func (e *engine2D) countGrids() error {
	cols := relation.ColumnSet{Numeric: e.attrs, Bool: []int{e.objAttr}}
	want := e.opt.ObjectiveValue
	pes := e.cfg.PEs
	if pes == 0 {
		// Unlike the 1-D counting scan (whose float target sums reorder
		// under segmentation), 2-D grid merging is exact, so the fused
		// counting scan parallelizes by default.
		pes = runtime.GOMAXPROCS(0)
	}
	n := e.rel.NumTuples()
	if pes > n {
		pes = n
	}
	rs, canRange := e.rel.(relation.RangeScanner)
	if !canRange || pes <= 1 {
		w, err := e.newGridWork()
		if err != nil {
			return err
		}
		if err := e.rel.Scan(cols, func(b *relation.Batch) error {
			w.countBatch(b, e.bounds, want)
			return nil
		}); err != nil {
			return err
		}
		e.pairs = w.pairs
		e.finalizePairs()
		return nil
	}
	segs := relation.AlignedSegments(e.rel, n, pes)
	works := make([]*gridWork, pes)
	errs := make(chan error, pes)
	for p := 0; p < pes; p++ {
		go func(p int) {
			local, err := e.newGridWork()
			if err != nil {
				errs <- err
				return
			}
			works[p] = local
			errs <- rs.ScanRange(segs[p], segs[p+1], cols, func(b *relation.Batch) error {
				local.countBatch(b, e.bounds, want)
				return nil
			})
		}(p)
	}
	var firstErr error
	for p := 0; p < pes; p++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	total := works[0]
	for _, part := range works[1:] {
		if err := total.merge(part); err != nil {
			return err
		}
	}
	e.pairs = total.pairs
	e.finalizePairs()
	return nil
}

// finalizePairs derives each pair's tuple and objective-hit counts
// from its (merged) grid: n = Σ U, hits = Σ V. Both are exact — V
// cells are integer counts — so this matches per-row counters without
// the hot loop maintaining any.
func (e *engine2D) finalizePairs() {
	for p := range e.pairs {
		pr := &e.pairs[p]
		pr.n = pr.grid.Total()
		pr.hits = int(pr.grid.SumV())
	}
}

// rectRule runs one rectangle kernel on one pair's grid with the given
// worker share and assembles the Rule2D (or nil when no rectangle
// meets the kind's threshold).
func (e *engine2D) rectRule(pr *pair2D, kind RuleKind, workers int) (*Rule2D, error) {
	var rect region.Rect
	var ok bool
	var err error
	switch kind {
	case OptimizedConfidence:
		rect, ok, err = region.OptimalRectConfidenceParallel(pr.grid, e.cfg.MinSupport*float64(pr.n), workers)
	case OptimizedSupport:
		rect, ok, err = region.OptimalRectSupportParallel(pr.grid, e.cfg.MinConfidence, workers)
	case OptimizedGain:
		rect, ok, err = region.MaxGainRectParallel(pr.grid, e.cfg.MinConfidence, workers)
		if err == nil && ok && rect.Gain <= 0 {
			ok = false // no rectangle beats the threshold anywhere
		}
	default:
		return nil, fmt.Errorf("miner: unknown rule kind %v", kind)
	}
	if err != nil || !ok {
		return nil, err
	}
	out := &Rule2D{
		Kind:           kind,
		NumericA:       e.names[pr.ai],
		NumericB:       e.names[pr.bi],
		Objective:      e.opt.Objective,
		ObjectiveValue: e.opt.ObjectiveValue,
		Support:        float64(rect.Count) / float64(pr.n),
		Count:          rect.Count,
		Confidence:     rect.Conf,
		Baseline:       float64(pr.hits) / float64(pr.n),
		Gain:           rect.Gain,
		GridRows:       pr.grid.Rows(),
		GridCols:       pr.grid.Cols(),
	}
	// Observed value ranges over the rectangle's rows/columns; empty
	// rows or columns inside the rectangle contribute ±Inf extremes
	// that min/max absorb naturally.
	out.LowA, out.HighA = math.Inf(1), math.Inf(-1)
	for r := rect.R1; r <= rect.R2; r++ {
		if pr.minA[r] < out.LowA {
			out.LowA = pr.minA[r]
		}
		if pr.maxA[r] > out.HighA {
			out.HighA = pr.maxA[r]
		}
	}
	out.LowB, out.HighB = math.Inf(1), math.Inf(-1)
	for c := rect.C1; c <= rect.C2; c++ {
		if pr.minB[c] < out.LowB {
			out.LowB = pr.minB[c]
		}
		if pr.maxB[c] > out.HighB {
			out.HighB = pr.maxB[c]
		}
	}
	return out, nil
}

// regionRule runs one non-rectangular region kernel on one pair's grid
// and assembles the RegionRule (nil when no region achieves positive
// gain).
func (e *engine2D) regionRule(pr *pair2D, class RegionClass, workers int) (*RegionRule, error) {
	var xm region.XMonotoneRegion
	var ok bool
	var err error
	switch class {
	case XMonotoneClass:
		xm, ok, err = region.MaxGainXMonotoneParallel(pr.grid, e.cfg.MinConfidence, workers)
	case RectilinearConvexClass:
		xm, ok, err = region.MaxGainRectilinearConvexParallel(pr.grid, e.cfg.MinConfidence, workers)
	default:
		return nil, fmt.Errorf("miner: region class %v not supported here (rectangles use Kinds)", class)
	}
	if err != nil {
		return nil, err
	}
	if !ok || xm.Gain <= 0 {
		return nil, nil
	}
	out := &RegionRule{
		Class:          class,
		NumericA:       e.names[pr.ai],
		NumericB:       e.names[pr.bi],
		Objective:      e.opt.Objective,
		ObjectiveValue: e.opt.ObjectiveValue,
		Support:        float64(xm.Count) / float64(pr.n),
		Count:          xm.Count,
		Confidence:     xm.Conf,
		Baseline:       float64(pr.hits) / float64(pr.n),
		Gain:           xm.Gain,
	}
	boundsB := e.bounds[pr.bi]
	for _, ci := range xm.Columns {
		bLo, bHi := boundsB.BucketRange(ci.Col)
		band := RegionBand{BLo: bLo, BHi: bHi, ALo: math.Inf(1), AHi: math.Inf(-1)}
		for r := ci.Lo; r <= ci.Hi; r++ {
			if pr.minA[r] < band.ALo {
				band.ALo = pr.minA[r]
			}
			if pr.maxA[r] > band.AHi {
				band.AHi = pr.maxA[r]
			}
		}
		out.Bands = append(out.Bands, band)
	}
	return out, nil
}

// mineAll is phase 3: fan the region kernels over a worker pool across
// (pair, kind) tasks. Each task gets an even share of the pool for its
// kernel's internal parallelism, so a single-pair request still uses
// every core on one sweep while a wide all-pairs request parallelizes
// across pairs.
func (e *engine2D) mineAll() (*Result2D, error) {
	type task struct {
		pair     int
		kind     RuleKind
		class    RegionClass
		isRegion bool
	}
	var tasks []task
	mined := 0
	for p := range e.pairs {
		if e.pairs[p].n == 0 {
			continue // no tuple has both values finite; skip the pair
		}
		mined++
		for _, kind := range e.opt.Kinds {
			tasks = append(tasks, task{pair: p, kind: kind})
		}
		for _, class := range e.opt.Regions {
			tasks = append(tasks, task{pair: p, class: class, isRegion: true})
		}
	}
	res := &Result2D{Pairs: mined, Tuples: e.rel.NumTuples(), Config: e.cfg}
	if len(tasks) == 0 {
		return res, nil
	}
	outer := e.cfg.Workers
	if outer > len(tasks) {
		outer = len(tasks)
	}
	if outer < 1 {
		outer = 1
	}
	inner := e.cfg.Workers / outer
	if inner < 1 {
		inner = 1
	}
	rules := make([]*Rule2D, len(tasks))
	regions := make([]*RegionRule, len(tasks))
	errs := make([]error, len(tasks))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				tk := tasks[t]
				pr := &e.pairs[tk.pair]
				if tk.isRegion {
					regions[t], errs[t] = e.regionRule(pr, tk.class, inner)
				} else {
					rules[t], errs[t] = e.rectRule(pr, tk.kind, inner)
				}
			}
		}()
	}
	for t := range tasks {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("miner: pair (%s, %s): %w",
				e.names[e.pairs[tasks[t].pair].ai], e.names[e.pairs[tasks[t].pair].bi], err)
		}
	}
	for _, r := range rules {
		if r != nil {
			res.Rules = append(res.Rules, *r)
		}
	}
	for _, r := range regions {
		if r != nil {
			res.Regions = append(res.Regions, *r)
		}
	}
	sort.SliceStable(res.Rules, func(i, j int) bool {
		return res.Rules[i].Lift() > res.Rules[j].Lift()
	})
	sort.SliceStable(res.Regions, func(i, j int) bool {
		return res.Regions[i].Gain > res.Regions[j].Gain
	})
	return res, nil
}
