package miner

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"optrule/internal/bucketing"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// The fused 2-D engine. The paper's §1.4 extension buckets TWO numeric
// attributes into a grid and optimizes a region over it; mining it for
// every attribute pair of a wide relation is the 2-D analogue of the
// "complete set of optimized rules" workload, and the same premise
// applies: the database is far larger than main memory, so sequential
// passes are the currency of performance. MineAll2D reads the relation
// exactly TWICE no matter how many pairs it mines.
//
// The scans themselves now live in the plan layer (internal/plan),
// which serves 2-D pair grids and 1-D count groups from the SAME two
// scans and caches them across session queries:
//
//  1. one fused sampling scan (sampling.MultiColumnRequests via
//     bucketing.MultiSampledBoundarySpecs) draws every attribute's
//     Algorithm 3.1 sample and builds per-attribute grid boundaries —
//     the same per-attribute random streams the 1-D pipeline and the
//     legacy per-pair path consume, so boundaries are bit-identical;
//  2. one fused counting scan locates each tuple's bucket ONCE per
//     attribute and then fills all d(d−1)/2 pair grids. On relations
//     that support range scans the counting scan is segmented across
//     workers with boundaries snapped to the storage layer's block
//     groups (relation.AlignedSegments), each worker filling private
//     grids that are merged at the end — grid cells are integer
//     counts, so the merge is exact and the result is identical to a
//     serial scan. The scan's ColumnSet selects only the
//     participating columns, so the v2 columnar format reads just
//     those column blocks.
//
// What remains here is extraction: the region kernels (rectangle
// sweep, x-monotone and rectilinear-convex DPs) run on the in-memory
// grids, fanned out over a worker pool across (pair, kind) tasks, each
// task using the parallel region kernels for whatever share of the
// pool it gets.

// Options2D selects what MineAll2D mines.
type Options2D struct {
	// Numerics names the numeric attributes to pair up; every
	// unordered pair of distinct entries gets a grid. nil selects all
	// numeric attributes of the relation. At least two are required.
	Numerics []string
	// Objective is the Boolean objective attribute C; required.
	Objective string
	// ObjectiveValue is the required value of C (true = yes).
	ObjectiveValue bool
	// Kinds lists the rectangle-rule kinds to mine per pair. nil
	// selects the two paper-standard kinds (OptimizedSupport,
	// OptimizedConfidence); an explicit empty slice mines no
	// rectangles (useful when only region classes are wanted).
	Kinds []RuleKind
	// Regions lists non-rectangular §1.4 region classes to also mine
	// per pair (XMonotoneClass, RectilinearConvexClass).
	Regions []RegionClass
	// GridSide is the per-axis bucket count (0 = DefaultGridSide). The
	// rectangle sweep is O(side³) per pair: sides up to 256 are
	// practical for a handful of pairs, smaller sides for wide
	// all-pairs sweeps.
	GridSide int
}

// Result2D is the output of MineAll2D.
type Result2D struct {
	// Rules are the mined rectangle rules, sorted by descending lift.
	Rules []Rule2D
	// Regions are the mined non-rectangular region rules, sorted by
	// descending gain.
	Regions []RegionRule
	// Pairs is the number of attribute pairs actually mined; pairs
	// with no tuple where both attributes are finite are skipped and
	// not counted.
	Pairs  int
	Tuples int
	Config Config
}

// MineAll2D mines 2-D optimized rules for every unordered pair of the
// requested numeric attributes in exactly two relation scans (one
// fused sampling scan, one fused counting scan — run by the plan
// executor of a throwaway Session). Pairs with no tuple where both
// attributes are finite are skipped. Output is rule-for-rule identical
// to running the legacy per-pair pipeline (Mine2DPerPair) for each
// pair and kind.
func MineAll2D(rel relation.Relation, opt Options2D, cfg Config) (*Result2D, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, err
	}
	return s.MineAll2D(opt)
}

// pair2D is one attribute pair's grid and statistics: rows bucket the
// first attribute, columns the second, and the observed per-bucket
// value extremes translate bucket ranges back to closed value ranges.
// A tuple counts toward a pair iff BOTH its values are finite, so the
// extremes are tracked per pair, not per attribute — exactly the
// legacy per-pair semantics. The grids and extremes are produced (and
// cached) by the plan executor's fused counting scan.
type pair2D struct {
	ai, bi int // indices into the engine's attribute list
	grid   *region.Grid
	minA   []float64
	maxA   []float64
	minB   []float64
	maxB   []float64
	n      int // tuples with both values finite
	hits   int // of those, tuples meeting the objective
}

// engine2D carries the extraction phase's state: the statistics the
// plan layer produced plus the query's thresholds and kernel
// selection. Session.extract2D assembles it.
type engine2D struct {
	cfg     Config
	opt     Options2D
	attrs   []int    // schema positions of opt.Numerics
	names   []string // resolved attribute names
	objAttr int
	side    int
	tuples  int
	bounds  []bucketing.Boundaries
	pairs   []pair2D
}

// rectRule runs one rectangle kernel on one pair's grid with the given
// worker share and assembles the Rule2D (or nil when no rectangle
// meets the kind's threshold).
func (e *engine2D) rectRule(pr *pair2D, kind RuleKind, workers int) (*Rule2D, error) {
	var rect region.Rect
	var ok bool
	var err error
	switch kind {
	case OptimizedConfidence:
		rect, ok, err = region.OptimalRectConfidenceParallel(pr.grid, e.cfg.MinSupport*float64(pr.n), workers)
	case OptimizedSupport:
		rect, ok, err = region.OptimalRectSupportParallel(pr.grid, e.cfg.MinConfidence, workers)
	case OptimizedGain:
		rect, ok, err = region.MaxGainRectParallel(pr.grid, e.cfg.MinConfidence, workers)
		if err == nil && ok && rect.Gain <= 0 {
			ok = false // no rectangle beats the threshold anywhere
		}
	default:
		return nil, fmt.Errorf("miner: unknown rule kind %v", kind)
	}
	if err != nil || !ok {
		return nil, err
	}
	out := &Rule2D{
		Kind:           kind,
		NumericA:       e.names[pr.ai],
		NumericB:       e.names[pr.bi],
		Objective:      e.opt.Objective,
		ObjectiveValue: e.opt.ObjectiveValue,
		Support:        float64(rect.Count) / float64(pr.n),
		Count:          rect.Count,
		Confidence:     rect.Conf,
		Baseline:       float64(pr.hits) / float64(pr.n),
		Gain:           rect.Gain,
		GridRows:       pr.grid.Rows(),
		GridCols:       pr.grid.Cols(),
	}
	// Observed value ranges over the rectangle's rows/columns; empty
	// rows or columns inside the rectangle contribute ±Inf extremes
	// that min/max absorb naturally.
	out.LowA, out.HighA = math.Inf(1), math.Inf(-1)
	for r := rect.R1; r <= rect.R2; r++ {
		if pr.minA[r] < out.LowA {
			out.LowA = pr.minA[r]
		}
		if pr.maxA[r] > out.HighA {
			out.HighA = pr.maxA[r]
		}
	}
	out.LowB, out.HighB = math.Inf(1), math.Inf(-1)
	for c := rect.C1; c <= rect.C2; c++ {
		if pr.minB[c] < out.LowB {
			out.LowB = pr.minB[c]
		}
		if pr.maxB[c] > out.HighB {
			out.HighB = pr.maxB[c]
		}
	}
	return out, nil
}

// regionRule runs one non-rectangular region kernel on one pair's grid
// and assembles the RegionRule (nil when no region achieves positive
// gain).
func (e *engine2D) regionRule(pr *pair2D, class RegionClass, workers int) (*RegionRule, error) {
	var xm region.XMonotoneRegion
	var ok bool
	var err error
	switch class {
	case XMonotoneClass:
		xm, ok, err = region.MaxGainXMonotoneParallel(pr.grid, e.cfg.MinConfidence, workers)
	case RectilinearConvexClass:
		xm, ok, err = region.MaxGainRectilinearConvexParallel(pr.grid, e.cfg.MinConfidence, workers)
	default:
		return nil, fmt.Errorf("miner: region class %v not supported here (rectangles use Kinds)", class)
	}
	if err != nil {
		return nil, err
	}
	if !ok || xm.Gain <= 0 {
		return nil, nil
	}
	out := &RegionRule{
		Class:          class,
		NumericA:       e.names[pr.ai],
		NumericB:       e.names[pr.bi],
		Objective:      e.opt.Objective,
		ObjectiveValue: e.opt.ObjectiveValue,
		Support:        float64(xm.Count) / float64(pr.n),
		Count:          xm.Count,
		Confidence:     xm.Conf,
		Baseline:       float64(pr.hits) / float64(pr.n),
		Gain:           xm.Gain,
	}
	boundsB := e.bounds[pr.bi]
	for _, ci := range xm.Columns {
		bLo, bHi := boundsB.BucketRange(ci.Col)
		band := RegionBand{BLo: bLo, BHi: bHi, ALo: math.Inf(1), AHi: math.Inf(-1)}
		for r := ci.Lo; r <= ci.Hi; r++ {
			if pr.minA[r] < band.ALo {
				band.ALo = pr.minA[r]
			}
			if pr.maxA[r] > band.AHi {
				band.AHi = pr.maxA[r]
			}
		}
		out.Bands = append(out.Bands, band)
	}
	return out, nil
}

// mineAll is phase 3: fan the region kernels over a worker pool across
// (pair, kind) tasks. Each task gets an even share of the pool for its
// kernel's internal parallelism, so a single-pair request still uses
// every core on one sweep while a wide all-pairs request parallelizes
// across pairs.
func (e *engine2D) mineAll() (*Result2D, error) {
	type task struct {
		pair     int
		kind     RuleKind
		class    RegionClass
		isRegion bool
	}
	var tasks []task
	mined := 0
	for p := range e.pairs {
		if e.pairs[p].n == 0 {
			continue // no tuple has both values finite; skip the pair
		}
		mined++
		for _, kind := range e.opt.Kinds {
			tasks = append(tasks, task{pair: p, kind: kind})
		}
		for _, class := range e.opt.Regions {
			tasks = append(tasks, task{pair: p, class: class, isRegion: true})
		}
	}
	res := &Result2D{Pairs: mined, Tuples: e.tuples, Config: e.cfg}
	if len(tasks) == 0 {
		return res, nil
	}
	outer := e.cfg.Workers
	if outer > len(tasks) {
		outer = len(tasks)
	}
	if outer < 1 {
		outer = 1
	}
	inner := e.cfg.Workers / outer
	if inner < 1 {
		inner = 1
	}
	rules := make([]*Rule2D, len(tasks))
	regions := make([]*RegionRule, len(tasks))
	errs := make([]error, len(tasks))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				tk := tasks[t]
				pr := &e.pairs[tk.pair]
				if tk.isRegion {
					regions[t], errs[t] = e.regionRule(pr, tk.class, inner)
				} else {
					rules[t], errs[t] = e.rectRule(pr, tk.kind, inner)
				}
			}
		}()
	}
	for t := range tasks {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("miner: pair (%s, %s): %w",
				e.names[e.pairs[tasks[t].pair].ai], e.names[e.pairs[tasks[t].pair].bi], err)
		}
	}
	for _, r := range rules {
		if r != nil {
			res.Rules = append(res.Rules, *r)
		}
	}
	for _, r := range regions {
		if r != nil {
			res.Regions = append(res.Regions, *r)
		}
	}
	sort.SliceStable(res.Rules, func(i, j int) bool {
		return res.Rules[i].Lift() > res.Rules[j].Lift()
	})
	sort.SliceStable(res.Regions, func(i, j int) bool {
		return res.Regions[i].Gain > res.Regions[j].Gain
	})
	return res, nil
}
