package miner

import (
	"math/rand"
	"path/filepath"
	"testing"

	"optrule/internal/relation"
)

// Clustering differentials. ClusterBy reorders rows, and the sampling
// pass consumes rows in storage order — so clustered-vs-unclustered
// identity can only be pinned where boundaries do not depend on row
// order: exact domains (finest buckets are built from the distinct
// value SET). Under that regime the whole pipeline is row-order
// invariant, and mined rules must be DeepEqual-identical across the
// in-memory relation, the unclustered v3 file, the clustered v3 file,
// and the clustered sharded-v3 layout.

// clusterFixtures builds the same 4-attribute tuple multiset (two
// small-domain numerics, two Booleans) as an in-memory relation, an
// unclustered v3 file, a clustered v3 file (cluster column Score), and
// a sharded layout over the clustered file.
func clusterFixtures(t *testing.T, n int) (mem *relation.MemoryRelation, plain, clustered *relation.DiskRelation, sharded *relation.ShardedRelation) {
	t.Helper()
	schema := relation.Schema{
		{Name: "Score", Kind: relation.Numeric},
		{Name: "Grade", Kind: relation.Numeric},
		{Name: "Active", Kind: relation.Boolean},
		{Name: "Premium", Kind: relation.Boolean},
	}
	mem = relation.MustNewMemoryRelation(schema)
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.opr")
	dw, err := relation.NewDiskWriterV3(plainPath, schema, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < n; i++ {
		score := float64(rng.Intn(24))       // 24 distinct values
		grade := float64(rng.Intn(8)) * 0.25 // 8 distinct values
		active := rng.Intn(3) > 0
		premium := score >= 16 && rng.Intn(4) > 0 // plant a minable association
		nums := []float64{score, grade}
		bools := []bool{active, premium}
		mem.MustAppend(nums, bools)
		if err := dw.Append(nums, bools); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err = relation.OpenDisk(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })

	clusteredPath := filepath.Join(dir, "clustered.opr")
	if err := relation.ConvertFileClustered(plain, clusteredPath, relation.DiskFormatV3, 0); err != nil {
		t.Fatal(err)
	}
	clustered, err = relation.OpenDisk(clusteredPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clustered.Close() })

	manifest := filepath.Join(dir, "clustered.oprs")
	if err := relation.ConvertToSharded(clustered, manifest, 3, relation.DiskFormatV3); err != nil {
		t.Fatal(err)
	}
	sharded, err = relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	return mem, plain, clustered, sharded
}

// TestMineAllClusteredRuleIdentity pins clustered-vs-unclustered rule
// identity under exact domains, across every storage backend.
func TestMineAllClusteredRuleIdentity(t *testing.T) {
	mem, plain, clustered, sharded := clusterFixtures(t, 6000)
	cfg := Config{Buckets: 50, Seed: 13, ExactDomainLimit: 64, MineNegations: true}
	want, err := MineAll(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rules) == 0 {
		t.Fatal("degenerate differential test: no rules mined")
	}
	backends := []struct {
		name string
		rel  relation.Relation
	}{
		{"v3-unclustered", plain},
		{"v3-clustered", clustered},
		{"sharded-v3-clustered", sharded},
	}
	for _, b := range backends {
		got, err := MineAll(b.rel, cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		sameRules(t, b.name, got, want)
	}
}

// TestMineAllClusteredSchedulerIdentity pins the dynamic scheduler's
// determinism contract end to end: on clustered v3 (and sharded-v3)
// storage, where PlanScanChunks produces cost-skewed chunks claimed by
// racing workers, mined rules must be DeepEqual-identical across
// serial and every worker count — steal order must not leak into any
// statistic. Runs under -race in CI.
func TestMineAllClusteredSchedulerIdentity(t *testing.T) {
	_, _, clustered, sharded := clusterFixtures(t, 6000)
	cfg := Config{Buckets: 50, Seed: 13, ExactDomainLimit: 64, MineGain: true}
	want, err := MineAll(clustered, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rules) == 0 {
		t.Fatal("degenerate differential test: no rules mined")
	}
	for _, backend := range []struct {
		name string
		rel  relation.Relation
	}{{"v3", clustered}, {"sharded", sharded}} {
		for _, pes := range []int{1, 2, 4, 8} {
			pcfg := cfg
			pcfg.PEs = pes
			got, err := MineAll(backend.rel, pcfg)
			if err != nil {
				t.Fatalf("%s/pes=%d: %v", backend.name, pes, err)
			}
			sameRules(t, backend.name, got, want)
		}
	}
}

// TestMineAllClusteredTwoScans holds the exactly-two-scans invariant
// on clustered inputs: a clustered layout changes WHERE the bytes live,
// not how many passes the fused pipeline issues.
func TestMineAllClusteredTwoScans(t *testing.T) {
	_, _, clustered, _ := clusterFixtures(t, 5000)
	counting := &relation.CountingRelation{R: clustered}
	res, err := MineAll(counting, Config{Buckets: 40, Seed: 3, ExactDomainLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Error("no rules mined on the clustered relation")
	}
	if counting.Scans != 2 {
		t.Errorf("MineAll issued %d scans over the clustered relation, want exactly 2 (sampling + counting)", counting.Scans)
	}
	if max := int64(2 * clustered.NumTuples()); counting.Rows > max {
		t.Errorf("scans delivered %d rows, want <= %d (two full passes)", counting.Rows, max)
	}
}
