package miner

import (
	"fmt"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/relation"
)

// AvgRange is an optimized range for the average operator (Section 5):
// a range of the driver attribute A optimizing the average of the
// target attribute B.
type AvgRange struct {
	// Driver and Target are the attribute names A and B.
	Driver, Target string
	// Low and High delimit the range of A (observed values).
	Low, High float64
	// Support is the fraction of tuples with A in the range; Count the
	// absolute number.
	Support float64
	Count   int
	// Average is the mean of B over tuples with A in the range.
	Average float64
	// OverallAverage is the mean of B over all tuples.
	OverallAverage float64
}

// String renders the range as the decision-support query it answers.
func (a AvgRange) String() string {
	return fmt.Sprintf("avg(%s | %s in [%.6g, %.6g]) = %.6g over %d tuples (%.2f%% support; overall avg %.6g)",
		a.Target, a.Driver, a.Low, a.High, a.Average, a.Count, 100*a.Support, a.OverallAverage)
}

// averageSetup buckets the driver attribute and accumulates per-bucket
// target sums in one scan.
func averageSetup(rel relation.Relation, driver, target string, cfg Config) (*bucketing.Counts, error) {
	s := rel.Schema()
	dAttr := s.Index(driver)
	if dAttr < 0 || s[dAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", driver)
	}
	tAttr := s.Index(target)
	if tAttr < 0 || s[tAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", target)
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}
	rng := attrRNG(cfg.Seed, dAttr)
	bounds, err := bucketing.SampledBoundaries(rel, dAttr, cfg.Buckets, cfg.SampleFactor, rng)
	if err != nil {
		return nil, err
	}
	counts, err := bucketing.Count(rel, dAttr, bounds, bucketing.Options{
		Targets:       []int{tAttr},
		TrackExtremes: true,
	})
	if err != nil {
		return nil, err
	}
	compact, _ := counts.Compact()
	return compact, nil
}

// fillAvg assembles an AvgRange from a bucket-range solution.
func fillAvg(driver, target string, p core.Pair, c *bucketing.Counts) AvgRange {
	totalSum := 0.0
	for _, x := range c.Sum[0] {
		totalSum += x
	}
	return AvgRange{
		Driver:         driver,
		Target:         target,
		Low:            c.MinVal[p.S],
		High:           c.MaxVal[p.T],
		Support:        float64(p.Count) / float64(c.N),
		Count:          p.Count,
		Average:        p.Conf,
		OverallAverage: totalSum / float64(c.N),
	}
}

// MaxAverageRange computes the range of driver values that maximizes
// the average of the target attribute among ranges containing at least
// minSupport (a fraction) of the tuples — Definition 5.2, solved with
// the optimal-slope-pair algorithm.
func MaxAverageRange(rel relation.Relation, driver, target string, minSupport float64, cfg Config) (AvgRange, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return AvgRange{}, err
	}
	return s.MaxAverageRange(driver, target, minSupport)
}

// legacyMaxAverageRange is the pre-session pipeline, kept as the
// differential-testing reference for the session-backed MaxAverageRange.
func legacyMaxAverageRange(rel relation.Relation, driver, target string, minSupport float64, cfg Config) (AvgRange, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return AvgRange{}, err
	}
	if minSupport < 0 || minSupport > 1 {
		return AvgRange{}, fmt.Errorf("miner: minSupport %g out of [0,1]", minSupport)
	}
	compact, err := averageSetup(rel, driver, target, cfg)
	if err != nil {
		return AvgRange{}, err
	}
	p, ok, err := core.OptimalSlopePair(compact.U, compact.Sum[0], minSupport*float64(compact.N))
	if err != nil {
		return AvgRange{}, err
	}
	if !ok {
		return AvgRange{}, fmt.Errorf("miner: no range reaches support %g", minSupport)
	}
	return fillAvg(driver, target, p, compact), nil
}

// MaxSupportRange computes the range of driver values that maximizes
// support among ranges whose target average is at least minAverage —
// Definition 5.3, solved with the optimal-support-pair algorithm. As
// the paper notes, a threshold at or below the overall average is
// trivially satisfied by the whole domain; that result is returned, not
// an error.
func MaxSupportRange(rel relation.Relation, driver, target string, minAverage float64, cfg Config) (AvgRange, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return AvgRange{}, err
	}
	return s.MaxSupportRange(driver, target, minAverage)
}

// legacyMaxSupportRange is the pre-session pipeline, kept as the
// differential-testing reference for the session-backed MaxSupportRange.
func legacyMaxSupportRange(rel relation.Relation, driver, target string, minAverage float64, cfg Config) (AvgRange, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return AvgRange{}, err
	}
	compact, err := averageSetup(rel, driver, target, cfg)
	if err != nil {
		return AvgRange{}, err
	}
	p, ok, err := core.OptimalSupportPair(compact.U, compact.Sum[0], minAverage)
	if err != nil {
		return AvgRange{}, err
	}
	if !ok {
		return AvgRange{}, fmt.Errorf("miner: no range reaches average %g", minAverage)
	}
	return fillAvg(driver, target, p, compact), nil
}
