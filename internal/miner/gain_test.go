package miner

import (
	"testing"
)

func TestMineGainRules(t *testing.T) {
	rel, _ := bankRelation(t, 30000)
	res, err := MineAll(rel, Config{
		Buckets: 200, Seed: 3, MinConfidence: 0.5, MineGain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gains []Rule
	for _, r := range res.Rules {
		if r.Kind == OptimizedGain {
			gains = append(gains, r)
		}
	}
	if len(gains) == 0 {
		t.Fatal("no optimized-gain rules; the planted Balance→CardLoan band exceeds θ=0.5")
	}
	for _, r := range gains {
		if r.Gain <= 0 {
			t.Errorf("gain rule with non-positive gain: %+v", r)
		}
		// A positive-gain range is necessarily confident: gain > 0 means
		// Σv > θ·Σu.
		if r.Confidence < 0.5 {
			t.Errorf("positive-gain range below threshold confidence: %+v", r)
		}
		if r.Low > r.High || r.Support <= 0 || r.Support > 1 {
			t.Errorf("malformed gain rule: %+v", r)
		}
	}
	// The gain rule for the planted pair sits between the two classic
	// kinds: more support than the confidence rule, more confidence than
	// the threshold.
	var gainBal, confBal *Rule
	for i := range res.Rules {
		r := &res.Rules[i]
		if r.Numeric == "Balance" && r.Objective == "CardLoan" {
			switch r.Kind {
			case OptimizedGain:
				gainBal = r
			case OptimizedConfidence:
				confBal = r
			}
		}
	}
	if gainBal == nil || confBal == nil {
		t.Fatal("Balance→CardLoan rules missing")
	}
	if gainBal.Count <= confBal.Count {
		t.Errorf("gain rule should trade confidence for support vs the confidence rule: %d <= %d",
			gainBal.Count, confBal.Count)
	}
	if OptimizedGain.String() != "optimized-gain" {
		t.Errorf("kind string wrong")
	}
}

func TestMineGainOffByDefault(t *testing.T) {
	rel, _ := bankRelation(t, 5000)
	res, err := MineAll(rel, Config{Buckets: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.Kind == OptimizedGain {
			t.Fatalf("gain rule mined without MineGain: %+v", r)
		}
	}
}
