package miner

import (
	"fmt"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/relation"
)

// MineTopK mines up to k pairwise-disjoint optimized ranges for one
// (numeric, Boolean) attribute pair — the ranked list of clusters a
// campaign planner works through after the single optimal range. kind
// selects the optimization: OptimizedConfidence returns disjoint ranges
// in decreasing confidence, each with support >= cfg.MinSupport;
// OptimizedSupport returns them in decreasing support, each with
// confidence >= cfg.MinConfidence. Each range is optimal within the
// segment left after removing the better ranges.
func MineTopK(rel relation.Relation, numeric, objective string, objectiveValue bool,
	kind RuleKind, k int, cfg Config) ([]Rule, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, err
	}
	return s.MineTopK(numeric, objective, objectiveValue, kind, k)
}

// legacyMineTopK is the pre-session pipeline (its own sampling pass +
// counting scan), kept as the differential-testing reference for the
// session-backed MineTopK.
func legacyMineTopK(rel relation.Relation, numeric, objective string, objectiveValue bool,
	kind RuleKind, k int, cfg Config) ([]Rule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("miner: k = %d must be positive", k)
	}
	s := rel.Schema()
	numAttr := s.Index(numeric)
	if numAttr < 0 || s[numAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numeric)
	}
	objAttr := s.Index(objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, fmt.Errorf("miner: %q is not a Boolean attribute", objective)
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}
	rng := attrRNG(cfg.Seed, numAttr)
	bounds, err := bucketing.SampledBoundaries(rel, numAttr, cfg.Buckets, cfg.SampleFactor, rng)
	if err != nil {
		return nil, err
	}
	counts, err := bucketing.Count(rel, numAttr, bounds, bucketing.Options{
		Bools:         []bucketing.BoolCond{{Attr: objAttr, Want: objectiveValue}},
		TrackExtremes: true,
	})
	if err != nil {
		return nil, err
	}
	compact, _ := counts.Compact()
	v := make([]float64, compact.M)
	hits := 0
	for i, c := range compact.V[0] {
		v[i] = float64(c)
		hits += c
	}

	var pairs []core.Pair
	switch kind {
	case OptimizedConfidence:
		pairs, err = core.TopKSlopePairs(compact.U, v, cfg.MinSupport*float64(compact.N), k)
	case OptimizedSupport:
		pairs, err = core.TopKSupportPairs(compact.U, v, cfg.MinConfidence, k)
	default:
		return nil, fmt.Errorf("miner: unknown rule kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	rules := make([]Rule, 0, len(pairs))
	for _, p := range pairs {
		r := Rule{
			Kind:           kind,
			Numeric:        s[numAttr].Name,
			Objective:      s[objAttr].Name,
			ObjectiveValue: objectiveValue,
			Baseline:       float64(hits) / float64(compact.N),
			Buckets:        compact.M,
		}
		fillPair(&r, p, compact)
		rules = append(rules, r)
	}
	return rules, nil
}
