package miner

import (
	"fmt"
	"io"
	"strings"

	"optrule/internal/bucketing"
	"optrule/internal/relation"
)

// Profile is the per-bucket confidence landscape of one (numeric,
// Boolean) attribute pair — the picture a user looks at to judge why an
// optimized rule selected the range it did.
type Profile struct {
	Numeric, Objective string
	ObjectiveValue     bool
	// Buckets are in driver order; Lo/Hi are observed value extremes,
	// Support the tuple count, Conf the objective rate within the bucket.
	Buckets []ProfileBucket
	// Overall is the objective rate over all tuples.
	Overall float64
	N       int
}

// ProfileBucket is one bucket of a Profile.
type ProfileBucket struct {
	Lo, Hi  float64
	Support int
	Conf    float64
}

// BuildProfile computes a Profile with the given number of buckets
// (coarser than mining resolution, intended for display).
func BuildProfile(rel relation.Relation, numeric, objective string, objectiveValue bool,
	buckets int, cfg Config) (*Profile, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if buckets < 1 {
		return nil, fmt.Errorf("miner: profile bucket count %d must be positive", buckets)
	}
	s := rel.Schema()
	numAttr := s.Index(numeric)
	if numAttr < 0 || s[numAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numeric)
	}
	objAttr := s.Index(objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, fmt.Errorf("miner: %q is not a Boolean attribute", objective)
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}
	rng := attrRNG(cfg.Seed, numAttr)
	bounds, err := bucketing.SampledBoundaries(rel, numAttr, buckets, cfg.SampleFactor, rng)
	if err != nil {
		return nil, err
	}
	counts, err := bucketing.Count(rel, numAttr, bounds, bucketing.Options{
		Bools:         []bucketing.BoolCond{{Attr: objAttr, Want: objectiveValue}},
		TrackExtremes: true,
	})
	if err != nil {
		return nil, err
	}
	compact, _ := counts.Compact()
	p := &Profile{
		Numeric:        numeric,
		Objective:      objective,
		ObjectiveValue: objectiveValue,
		N:              compact.N,
	}
	hits := 0
	for i := 0; i < compact.M; i++ {
		hits += compact.V[0][i]
		p.Buckets = append(p.Buckets, ProfileBucket{
			Lo:      compact.MinVal[i],
			Hi:      compact.MaxVal[i],
			Support: compact.U[i],
			Conf:    float64(compact.V[0][i]) / float64(compact.U[i]),
		})
	}
	p.Overall = float64(hits) / float64(compact.N)
	return p, nil
}

// Render writes an ASCII bar chart of the profile, marking buckets
// covered by the optional highlight range [lo, hi] with '◆'.
func (p *Profile) Render(w io.Writer, highlightLo, highlightHi float64, highlight bool) {
	val := "yes"
	if !p.ObjectiveValue {
		val = "no"
	}
	fmt.Fprintf(w, "confidence of (%s=%s) by %s bucket (overall %.1f%%, %d tuples)\n",
		p.Objective, val, p.Numeric, 100*p.Overall, p.N)
	const width = 40
	for _, b := range p.Buckets {
		bar := int(b.Conf*width + 0.5)
		if bar > width {
			bar = width
		}
		mark := " "
		if highlight && b.Lo >= highlightLo && b.Hi <= highlightHi {
			mark = "◆"
		}
		fmt.Fprintf(w, "%s [%12.5g, %12.5g] %6.1f%% |%-*s| n=%d\n",
			mark, b.Lo, b.Hi, 100*b.Conf, width, strings.Repeat("█", bar), b.Support)
	}
}
