package miner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"optrule/internal/relation"
)

// planted2DRelation plants a hot rectangle: tuples with A ∈ [200, 400]
// AND B ∈ [50, 80] meet C with probability 0.85; background 0.08.
func planted2DRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "Age", Kind: relation.Numeric},
		{Name: "Balance", Kind: relation.Numeric},
		{Name: "CardLoan", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(202))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 1000
		b := rng.Float64() * 200
		p := 0.08
		if a >= 200 && a <= 400 && b >= 50 && b <= 80 {
			p = 0.85
		}
		rel.MustAppend([]float64{a, b}, []bool{rng.Float64() < p})
	}
	return rel
}

func TestMine2DConfidenceFindsPlantedRectangle(t *testing.T) {
	rel := planted2DRelation(t, 120000)
	r, err := Mine2D(rel, "Age", "Balance", "CardLoan", true, OptimizedConfidence, 32, Config{
		MinSupport: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("no 2D rule found")
	}
	// The planted block holds 20% × 15% = 3% of tuples at conf 0.85, so
	// with a 2% floor the optimum should sit inside/around it.
	overlapA := math.Max(r.LowA, 200) < math.Min(r.HighA, 400)
	overlapB := math.Max(r.LowB, 50) < math.Min(r.HighB, 80)
	if !overlapA || !overlapB {
		t.Errorf("rectangle [%g,%g]x[%g,%g] misses the planted block", r.LowA, r.HighA, r.LowB, r.HighB)
	}
	if r.Confidence < 0.6 {
		t.Errorf("confidence %g too low; planted block is 0.85", r.Confidence)
	}
	if r.Support < 0.02-1e-9 {
		t.Errorf("support %g below floor", r.Support)
	}
	if r.Lift() < 3 {
		t.Errorf("lift %g; expected a strong planted signal", r.Lift())
	}
	if !strings.Contains(r.String(), "Age") || !strings.Contains(r.String(), "Balance") {
		t.Errorf("String() malformed: %s", r)
	}
}

func TestMine2DSupportAndGain(t *testing.T) {
	rel := planted2DRelation(t, 80000)
	sup, err := Mine2D(rel, "Age", "Balance", "CardLoan", true, OptimizedSupport, 24, Config{
		MinConfidence: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no optimized-support rectangle")
	}
	if sup.Confidence < 0.5 {
		t.Errorf("support rectangle below threshold: %+v", sup)
	}
	gain, err := Mine2D(rel, "Age", "Balance", "CardLoan", true, OptimizedGain, 24, Config{
		MinConfidence: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gain == nil {
		t.Fatal("no optimized-gain rectangle")
	}
	if gain.Gain <= 0 {
		t.Errorf("gain rectangle has non-positive gain: %+v", gain)
	}
	// Gain rectangles are confident by construction (gain > 0).
	if gain.Confidence < 0.5 {
		t.Errorf("gain rectangle below threshold confidence: %+v", gain)
	}
}

func TestMine2DNoQualifyingRectangle(t *testing.T) {
	// Uniform noise at rate 0.1 cannot reach 90% confidence over any
	// ample rectangle.
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		rel.MustAppend([]float64{rng.Float64(), rng.Float64()}, []bool{rng.Float64() < 0.1})
	}
	r, err := Mine2D(rel, "A", "B", "C", true, OptimizedSupport, 16, Config{
		MinConfidence: 0.9, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		// A tiny lucky rectangle could in principle reach 0.9; accept
		// only if it is genuinely confident.
		if r.Confidence < 0.9 {
			t.Errorf("returned unconfident rectangle: %+v", r)
		}
	}
}

func TestMine2DValidation(t *testing.T) {
	rel := planted2DRelation(t, 100)
	if _, err := Mine2D(rel, "Nope", "Balance", "CardLoan", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Errorf("unknown attribute A accepted")
	}
	if _, err := Mine2D(rel, "Age", "Nope", "CardLoan", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Errorf("unknown attribute B accepted")
	}
	if _, err := Mine2D(rel, "Age", "Age", "CardLoan", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Errorf("identical attributes accepted")
	}
	if _, err := Mine2D(rel, "Age", "Balance", "Nope", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Errorf("unknown objective accepted")
	}
	if _, err := Mine2D(rel, "Age", "Balance", "CardLoan", true, RuleKind(9), 8, Config{}); err == nil {
		t.Errorf("bad kind accepted")
	}
	if _, err := Mine2D(rel, "Age", "Balance", "CardLoan", true, OptimizedSupport, -1, Config{}); err == nil {
		t.Errorf("negative grid side accepted")
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := Mine2D(empty, "Age", "Balance", "CardLoan", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
}

func TestMine2DLift(t *testing.T) {
	r := Rule2D{Confidence: 0.8, Baseline: 0.2}
	if r.Lift() != 4 {
		t.Errorf("lift = %g", r.Lift())
	}
	r.Baseline = 0
	if !math.IsInf(r.Lift(), 1) {
		t.Errorf("zero baseline should give +Inf")
	}
}
