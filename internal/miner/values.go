package miner

import (
	"fmt"
	"sort"

	"optrule/internal/core"
)

// MineValues mines both optimized rules directly from parallel slices —
// the paper's headline theoretical setting: given data sorted by the
// numeric attribute, the optimized rules are found in time LINEAR in
// the number of distinct values (Section 1.3). Values need not be
// pre-sorted; if they are (sort.Float64sAreSorted), no sorting happens
// and the whole computation is one linear pass over finest buckets.
// Rules are exact (finest buckets, Definition 2.5), not bucket
// approximations.
//
// values[i] is the numeric attribute of tuple i and hits[i] whether it
// meets the objective condition. minSupport is a fraction of len(values);
// minConfidence a fraction in [0, 1]. Either returned rule may be nil.
func MineValues(values []float64, hits []bool, minSupport, minConfidence float64,
	numericName, objectiveName string) (supportRule, confidenceRule *Rule, err error) {
	n := len(values)
	if n == 0 {
		return nil, nil, fmt.Errorf("miner: no values")
	}
	if len(hits) != n {
		return nil, nil, fmt.Errorf("miner: %d values but %d hits", n, len(hits))
	}
	if minSupport < 0 || minSupport > 1 {
		return nil, nil, fmt.Errorf("miner: minSupport %g out of [0,1]", minSupport)
	}
	if minConfidence < 0 || minConfidence > 1 {
		return nil, nil, fmt.Errorf("miner: minConfidence %g out of [0,1]", minConfidence)
	}

	// Order by value; skip the sort when the caller pre-sorted (the
	// linear-time case). hits must follow the same permutation.
	xs, hs := values, hits
	if !sort.Float64sAreSorted(values) {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
		xs = make([]float64, n)
		hs = make([]bool, n)
		for p, i := range idx {
			xs[p] = values[i]
			hs[p] = hits[i]
		}
	}

	// Finest buckets: collapse runs of equal values.
	var u []int
	var v []float64
	var lows []float64
	baselineHits := 0
	for i := 0; i < n; {
		j := i
		cnt, hit := 0, 0
		for j < n && xs[j] == xs[i] {
			cnt++
			if hs[j] {
				hit++
			}
			j++
		}
		u = append(u, cnt)
		v = append(v, float64(hit))
		lows = append(lows, xs[i])
		baselineHits += hit
		i = j
	}
	baseline := float64(baselineHits) / float64(n)

	mk := func(kind RuleKind, p core.Pair) *Rule {
		return &Rule{
			Kind:           kind,
			Numeric:        numericName,
			Objective:      objectiveName,
			ObjectiveValue: true,
			Low:            lows[p.S],
			High:           lows[p.T],
			Support:        float64(p.Count) / float64(n),
			Count:          p.Count,
			Confidence:     p.Conf,
			Baseline:       baseline,
			Buckets:        len(u),
		}
	}
	if p, ok, err := core.OptimalSupportPair(u, v, minConfidence); err != nil {
		return nil, nil, err
	} else if ok {
		supportRule = mk(OptimizedSupport, p)
	}
	if p, ok, err := core.OptimalSlopePair(u, v, minSupport*float64(n)); err != nil {
		return nil, nil, err
	} else if ok {
		confidenceRule = mk(OptimizedConfidence, p)
	}
	return supportRule, confidenceRule, nil
}
