package miner

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/plan"
	"optrule/internal/relation"
)

// sessionBackends materializes the same deterministic tuple stream on
// every storage backend, so the differential matrix compares
// bit-identical data: in-memory, v1 (row-major) disk, v2 (columnar)
// disk, and a 3-shard sharded relation.
func sessionBackends(t *testing.T, src datagen.RowSource, n int, seed int64) []struct {
	name string
	rel  relation.Relation
} {
	t.Helper()
	mem, err := datagen.Materialize(src, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	openDisk := func(version int) relation.Relation {
		path := t.TempDir() + "/rel.opr"
		if err := datagen.WriteDiskFormat(path, src, n, seed, version); err != nil {
			t.Fatal(err)
		}
		dr, err := relation.OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dr.Close() })
		return dr
	}
	manifest := t.TempDir() + "/rel.oprs"
	if err := datagen.WriteSharded(manifest, src, n, seed, 3, 0); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sr.Close() })
	return []struct {
		name string
		rel  relation.Relation
	}{
		{"memory", mem},
		{"v1", openDisk(relation.DiskFormatV1)},
		{"v2", openDisk(relation.DiskFormatV2)},
		{"sharded", sr},
	}
}

// requireDeepEqual fails unless got and want are deeply equal —
// including every floating-point field, since the session engine draws
// bit-identical samples and counts in the same row order as the legacy
// pipelines.
func requireDeepEqual(t *testing.T, name string, got, want any) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s differs:\nsession: %+v\nlegacy:  %+v", name, got, want)
	}
}

// TestSessionEntryPointsMatchLegacy pins every wrapped one-shot entry
// point rule-for-rule identical to its pre-session implementation on
// bank and retail data across all four storage backends.
func TestSessionEntryPointsMatchLegacy(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	type pick struct {
		numeric, objective, target string
		cond                       Condition
	}
	gens := []struct {
		name string
		gen  datagen.RowSource
		p    pick
	}{
		{"bank", bank, pick{numeric: "Balance", objective: "CardLoan", target: "Age",
			cond: Condition{Attr: "AutoWithdraw", Value: true}}},
		{"retail", retail, pick{numeric: "Amount", objective: "Pizza", target: "ItemCount",
			cond: Condition{Attr: "Coke", Value: true}}},
	}
	cfg := Config{Buckets: 150, Seed: 17, MinSupport: 0.05, MinConfidence: 0.55}
	for _, g := range gens {
		for _, b := range sessionBackends(t, g.gen, 6000, 23) {
			name := g.name + "/" + b.name
			rel := b.rel

			gotAll, err := MineAll(rel, cfg)
			if err != nil {
				t.Fatalf("%s MineAll: %v", name, err)
			}
			wantAll, err := mineAllPerAttribute(rel, cfg)
			if err != nil {
				t.Fatalf("%s legacy MineAll: %v", name, err)
			}
			requireDeepEqual(t, name+" MineAll rules", gotAll.Rules, wantAll.Rules)

			gotSup, gotConf, err := Mine(rel, g.p.numeric, g.p.objective, true,
				[]Condition{g.p.cond}, cfg)
			if err != nil {
				t.Fatalf("%s Mine: %v", name, err)
			}
			wantSup, wantConf, err := legacyMine(rel, g.p.numeric, g.p.objective, true,
				[]Condition{g.p.cond}, cfg)
			if err != nil {
				t.Fatalf("%s legacy Mine: %v", name, err)
			}
			requireDeepEqual(t, name+" Mine support", gotSup, wantSup)
			requireDeepEqual(t, name+" Mine confidence", gotConf, wantConf)

			for _, kind := range []RuleKind{OptimizedConfidence, OptimizedSupport} {
				got, err := MineTopK(rel, g.p.numeric, g.p.objective, true, kind, 3, cfg)
				if err != nil {
					t.Fatalf("%s MineTopK: %v", name, err)
				}
				want, err := legacyMineTopK(rel, g.p.numeric, g.p.objective, true, kind, 3, cfg)
				if err != nil {
					t.Fatalf("%s legacy MineTopK: %v", name, err)
				}
				requireDeepEqual(t, fmt.Sprintf("%s MineTopK %v", name, kind), got, want)
			}

			gotAvg, err := MaxAverageRange(rel, g.p.numeric, g.p.target, 0.10, cfg)
			if err != nil {
				t.Fatalf("%s MaxAverageRange: %v", name, err)
			}
			wantAvg, err := legacyMaxAverageRange(rel, g.p.numeric, g.p.target, 0.10, cfg)
			if err != nil {
				t.Fatalf("%s legacy MaxAverageRange: %v", name, err)
			}
			requireDeepEqual(t, name+" MaxAverageRange", gotAvg, wantAvg)

			gotMsr, err := MaxSupportRange(rel, g.p.numeric, g.p.target, wantAvg.OverallAverage, cfg)
			if err != nil {
				t.Fatalf("%s MaxSupportRange: %v", name, err)
			}
			wantMsr, err := legacyMaxSupportRange(rel, g.p.numeric, g.p.target, wantAvg.OverallAverage, cfg)
			if err != nil {
				t.Fatalf("%s legacy MaxSupportRange: %v", name, err)
			}
			requireDeepEqual(t, name+" MaxSupportRange", gotMsr, wantMsr)

			gotCSup, gotCConf, err := MineConjunctive(rel, g.p.numeric,
				[]Condition{{Attr: g.p.objective, Value: true}}, []Condition{g.p.cond}, cfg)
			if err != nil {
				t.Fatalf("%s MineConjunctive: %v", name, err)
			}
			wantCSup, wantCConf, err := legacyMineConjunctive(rel, g.p.numeric,
				[]Condition{{Attr: g.p.objective, Value: true}}, []Condition{g.p.cond}, cfg)
			if err != nil {
				t.Fatalf("%s legacy MineConjunctive: %v", name, err)
			}
			requireDeepEqual(t, name+" MineConjunctive support", gotCSup, wantCSup)
			requireDeepEqual(t, name+" MineConjunctive confidence", gotCConf, wantCConf)
		}
	}
}

// TestSessionExactDomainsMatchLegacy covers the finest-bucket
// (ExactDomainLimit) path through the session planner.
func TestSessionExactDomainsMatchLegacy(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 80, Seed: 4, ExactDomainLimit: 120, MineGain: true, MineNegations: true}
	got, err := MineAll(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mineAllPerAttribute(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "exact-domain MineAll rules", got.Rules, want.Rules)

	gotSup, gotConf, err := Mine(rel, "Age", "CardLoan", true, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSup, wantConf, err := legacyMine(rel, "Age", "CardLoan", true, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "exact-domain Mine support", gotSup, wantSup)
	requireDeepEqual(t, "exact-domain Mine confidence", gotConf, wantConf)
}

// mixedBatch is the heterogeneous 1-D + 2-D batch the scan-count and
// concurrency tests share: all-attribute rules, a conditioned targeted
// query, a 2-D pair with a region class, ranked ranges, an
// average-operator query, and a conjunctive query.
func mixedBatch() []Query {
	return []Query{
		{Op: OpRules},
		{Op: OpRules, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true,
			Conditions: []plan.Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan",
			ObjectiveValue: true, GridSide: 32, Regions: []RegionClass{XMonotoneClass}},
		{Op: OpTopK, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true, K: 3},
		{Op: OpAverage, Numeric: "Balance", Target: "Age", MinSupport: 0.1},
		{Op: OpConjunctive, Numeric: "Age",
			Objectives: []plan.Condition{{Attr: "CardLoan", Value: true}},
			Conditions: []plan.Condition{{Attr: "Mortgage", Value: true}}},
	}
}

// checkAnswers fails on any per-query error.
func checkAnswers(t *testing.T, answers []Answer) {
	t.Helper()
	for i, a := range answers {
		if a.Err != nil {
			t.Fatalf("query %d: %v", i, a.Err)
		}
	}
}

// TestSessionBatchTwoScans pins the executor's cost contract: a mixed
// 1-D/2-D batch costs exactly TWO relation scans (one sampling, one
// counting), and a re-query batch with different thresholds, kinds,
// and region classes costs ZERO scans — every statistic it needs is
// cached.
func TestSessionBatchTwoScans(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, 4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	counting := &relation.CountingRelation{R: mem}
	s, err := NewSession(counting, Config{Buckets: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	answers, err := s.ExecuteBatch(mixedBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkAnswers(t, answers)
	if counting.Scans != 2 {
		t.Fatalf("mixed batch cost %d scans, want exactly 2", counting.Scans)
	}

	// Same statistics, different query plane: thresholds, kinds, K, and
	// region class all change; nothing may rescan.
	requery := []Query{
		{Op: OpRules, MinSupport: 0.2, MinConfidence: 0.7,
			Kinds: []RuleKind{OptimizedSupport, OptimizedConfidence, OptimizedGain}},
		{Op: OpRules, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true,
			Conditions:    []plan.Condition{{Attr: "AutoWithdraw", Value: true}},
			MinConfidence: 0.8},
		{Op: OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan",
			ObjectiveValue: true, GridSide: 32,
			Kinds:   []RuleKind{OptimizedGain},
			Regions: []RegionClass{RectilinearConvexClass}},
		{Op: OpTopK, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true, K: 5,
			Kinds: []RuleKind{OptimizedSupport}},
		{Op: OpAverage, Numeric: "Balance", Target: "Age", MinSupport: 0.3},
		{Op: OpSupportRange, Numeric: "Balance", Target: "Age", MinAverage: 1},
	}
	answers, err = s.ExecuteBatch(requery)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswers(t, answers)
	if counting.Scans != 2 {
		t.Fatalf("cached re-query batch rescanned: %d scans total, want still 2", counting.Scans)
	}
	if st := s.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache did not serve the re-query: %+v", st)
	}

	// A genuinely new statistic (an unseen objective row on a cached
	// group) costs at most one more counting scan — the boundaries stay
	// cached, so no sampling scan runs.
	answers, err = s.ExecuteBatch([]Query{{
		Op: OpRules, Numeric: "Balance", Objective: "Mortgage", ObjectiveValue: false,
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkAnswers(t, answers)
	if counting.Scans != 3 {
		t.Fatalf("new objective row cost %d extra scans, want exactly 1 (counting only)", counting.Scans-2)
	}
}

// TestSessionBatchMatchesOneShots pins that a batched execution
// answers every query identically to its standalone one-shot wrapper.
func TestSessionBatchMatchesOneShots(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 200, Seed: 5}
	s, err := NewSession(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := s.ExecuteBatch(mixedBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkAnswers(t, answers)

	wantAll, err := MineAll(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "batch MineAll", answers[0].Rules, wantAll.Rules)

	wantSup, wantConf, err := Mine(rel, "Balance", "CardLoan", true,
		[]Condition{{Attr: "AutoWithdraw", Value: true}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gotRules []Rule
	gotRules = append(gotRules, answers[1].Rules...)
	found := map[RuleKind]*Rule{}
	for i := range gotRules {
		found[gotRules[i].Kind] = &gotRules[i]
	}
	requireDeepEqual(t, "batch Mine support", found[OptimizedSupport], wantSup)
	requireDeepEqual(t, "batch Mine confidence", found[OptimizedConfidence], wantConf)

	wantRegion, err := MineXMonotone(rel, "Balance", "Age", "CardLoan", true, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[2].Regions) != 1 || wantRegion == nil {
		t.Fatalf("region missing: batch=%d oneshot=%v", len(answers[2].Regions), wantRegion)
	}
	requireDeepEqual(t, "batch region", answers[2].Regions[0], *wantRegion)

	wantTopK, err := MineTopK(rel, "Balance", "CardLoan", true, OptimizedConfidence, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "batch topk", answers[3].Rules, wantTopK)

	wantAvg, err := MaxAverageRange(rel, "Balance", "Age", 0.1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "batch average", *answers[4].Range, wantAvg)
}

// TestSessionBadQueryDoesNotSinkBatch pins per-query error isolation.
func TestSessionBadQueryDoesNotSinkBatch(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(rel, Config{Buckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := s.ExecuteBatch([]Query{
		{Op: OpRules, Numeric: "Nope"},
		{Op: OpRules, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true},
		{Op: OpTopK, Numeric: "Balance", Objective: "CardLoan", K: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Err == nil {
		t.Errorf("unknown attribute accepted")
	}
	if answers[1].Err != nil || len(answers[1].Rules) == 0 {
		t.Errorf("good query failed alongside bad one: %v", answers[1].Err)
	}
	if answers[2].Err == nil {
		t.Errorf("k=0 accepted")
	}
}

// TestSessionRejectsUnusedQueryFields pins resolution's fail-loudly
// contract: a populated field the op would silently ignore (a
// conditioned top-k, a second axis on a 1-D query, rule kinds on an
// average query) is an error, not a silently different mining run.
func TestSessionRejectsUnusedQueryFields(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(rel, Config{Buckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{Op: OpTopK, Numeric: "Balance", Objective: "CardLoan", K: 3,
			Conditions: []plan.Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: OpRules, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan"},
		{Op: OpAverage, Numeric: "Balance", Target: "Age",
			Kinds: []RuleKind{OptimizedSupport}},
		{Op: OpRules, Numeric: "Balance", Objective: "CardLoan", GridSide: 32},
		{Op: OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan",
			Buckets: 100},
		{Op: OpConjunctive, Numeric: "Balance",
			Objectives: []plan.Condition{{Attr: "CardLoan", Value: true}}, K: 2},
	}
	answers, err := s.ExecuteBatch(bad)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		if a.Err == nil {
			t.Errorf("query %d with an op-unused field accepted: %+v", i, bad[i])
		}
	}
}

// TestSessionCacheEviction pins the LRU bound: a tiny budget forces
// evictions, the stats report them, and evicted statistics are
// recomputed correctly on the next query.
func TestSessionCacheEviction(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(rel, Config{Buckets: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheLimit(8 << 10) // far below one 500-bucket group's footprint
	first, err := s.MineAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mine2D("Balance", "Age", "CardLoan", true, OptimizedSupport, 64); err != nil {
		t.Fatal(err)
	}
	again, err := s.MineAll()
	if err != nil {
		t.Fatal(err)
	}
	requireDeepEqual(t, "post-eviction MineAll", again.Rules, first.Rules)
	if st := s.CacheStats(); st.Evictions == 0 {
		t.Errorf("tiny cache recorded no evictions: %+v", st)
	} else if st.MaxBytes != 8<<10 {
		t.Errorf("cache bound not applied: %+v", st)
	}
}

// sessionConcurrencyCheck hammers one shared session from many
// goroutines and requires every answer to match the sequential result.
// CI runs this under -race for the memory and sharded backends.
func sessionConcurrencyCheck(t *testing.T, rel relation.Relation) {
	t.Helper()
	s, err := NewSession(rel, Config{Buckets: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	queries := mixedBatch()
	want, err := s.ExecuteBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	checkAnswers(t, want)
	s.InvalidateCache()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Rotate the batch so goroutines collide on overlapping but
			// differently-ordered statistics.
			qs := append(append([]Query{}, queries[g%len(queries):]...), queries[:g%len(queries)]...)
			answers, err := s.ExecuteBatch(qs)
			if err != nil {
				errs <- err
				return
			}
			for i, a := range answers {
				j := (i + g%len(queries)) % len(queries)
				if a.Err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, i, a.Err)
					return
				}
				if !reflect.DeepEqual(a.Rules, want[j].Rules) ||
					!reflect.DeepEqual(a.Regions, want[j].Regions) ||
					!reflect.DeepEqual(a.Rules2D, want[j].Rules2D) ||
					!reflect.DeepEqual(a.Range, want[j].Range) {
					errs <- fmt.Errorf("goroutine %d query %d diverged from sequential answer", g, i)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestSessionConcurrentRowGrowth races cache-hit readers of one count
// group against publishers that keep ADDING objective rows to the
// same group key — the cache must merge by copy-on-write, never by
// mutating a published statistic a reader may hold (regression test
// for a concurrent map read/write crash; run under -race in CI).
func TestSessionConcurrentRowGrowth(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 1500, 29)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(rel, Config{Buckets: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the (Balance, 60, "") group with one objective row.
	if _, _, err := s.Mine("Balance", "CardLoan", true, nil); err != nil {
		t.Fatal(err)
	}
	objectives := []struct {
		attr string
		want bool
	}{
		{"CardLoan", true}, // steady cache-hit reader
		{"CardLoan", false},
		{"Mortgage", true},
		{"Mortgage", false},
		{"AutoWithdraw", true},
		{"AutoWithdraw", false},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(objectives))
	for _, obj := range objectives {
		wg.Add(1)
		go func(attr string, want bool) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, _, err := s.Mine("Balance", attr, want, nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(obj.attr, obj.want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestSessionConcurrentMemory races concurrent batches on one shared
// session over the in-memory backend.
func TestSessionConcurrentMemory(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := datagen.Materialize(bank, 3000, 19)
	if err != nil {
		t.Fatal(err)
	}
	sessionConcurrencyCheck(t, rel)
}

// TestSessionConcurrentSharded races concurrent batches on one shared
// session over the sharded disk backend (concurrent sub-scans on).
func TestSessionConcurrentSharded(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	manifest := t.TempDir() + "/rel.oprs"
	if err := datagen.WriteSharded(manifest, bank, 3000, 19, 3, 0); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	sr.SetConcurrentScans(2)
	sessionConcurrencyCheck(t, sr)
}
