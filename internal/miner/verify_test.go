package miner

import (
	"math"
	"testing"

	"optrule/internal/relation"
)

func TestVerifyMatchesMinedRuleExactly(t *testing.T) {
	rel, _ := bankRelation(t, 30000)
	sup, conf, err := Mine(rel, "Balance", "CardLoan", true, nil, Config{
		MinConfidence: 0.55, MinSupport: 0.05, Buckets: 300, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Rule{sup, conf} {
		if r == nil {
			t.Fatal("missing rule")
		}
		v, err := Verify(rel, *r, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The mined Count/Support/Confidence come from bucket counts over
		// the same closed range [Low, High] (observed extremes), so the
		// exact rescan must agree exactly.
		if v.Count != r.Count {
			t.Errorf("%s rule: verified count %d != mined %d", r.Kind, v.Count, r.Count)
		}
		if math.Abs(v.Support-r.Support) > 1e-12 {
			t.Errorf("%s rule: verified support %g != mined %g", r.Kind, v.Support, r.Support)
		}
		if math.Abs(v.Confidence-r.Confidence) > 1e-12 {
			t.Errorf("%s rule: verified confidence %g != mined %g", r.Kind, v.Confidence, r.Confidence)
		}
		if math.Abs(v.Baseline-r.Baseline) > 1e-12 {
			t.Errorf("%s rule: verified baseline %g != mined %g", r.Kind, v.Baseline, r.Baseline)
		}
	}
}

func TestVerifyWithConditions(t *testing.T) {
	rel, _ := bankRelation(t, 20000)
	conds := []Condition{{Attr: "AutoWithdraw", Value: true}}
	sup, _, err := Mine(rel, "Balance", "CardLoan", true, conds, Config{
		MinConfidence: 0.55, Buckets: 200, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no rule")
	}
	v, err := Verify(rel, *sup, conds)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count != sup.Count || math.Abs(v.Confidence-sup.Confidence) > 1e-12 {
		t.Errorf("conditional verify mismatch: %+v vs %+v", v, sup)
	}
	// Verifying WITHOUT the condition changes the statistics.
	v2, err := Verify(rel, *sup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Total == v.Total {
		t.Errorf("unconditional verify should scan more tuples (%d vs %d)", v2.Total, v.Total)
	}
}

func TestVerifyValidation(t *testing.T) {
	rel, _ := bankRelation(t, 100)
	if _, err := Verify(rel, Rule{Numeric: "Nope", Objective: "CardLoan"}, nil); err == nil {
		t.Errorf("unknown numeric accepted")
	}
	if _, err := Verify(rel, Rule{Numeric: "Balance", Objective: "Nope"}, nil); err == nil {
		t.Errorf("unknown objective accepted")
	}
	if _, err := Verify(rel, Rule{Numeric: "Balance", Objective: "CardLoan"},
		[]Condition{{Attr: "Balance"}}); err == nil {
		t.Errorf("numeric condition accepted")
	}
	// Conditions excluding everything.
	empty := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	empty.MustAppend([]float64{1}, []bool{false})
	if _, err := Verify(empty, Rule{Numeric: "X", Objective: "B", ObjectiveValue: true},
		[]Condition{{Attr: "B", Value: true}}); err == nil {
		t.Errorf("empty filtered scan accepted")
	}
}
