package miner

import (
	"fmt"
	"math"
	"strings"

	"optrule/internal/bucketing"
	"optrule/internal/plan"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// RegionBand is one column slice of a mined x-monotone region, in value
// space: tuples with NumericB in (BLo, BHi] and NumericA in [ALo, AHi].
type RegionBand struct {
	BLo, BHi float64 // column bucket's value range of the second attribute
	ALo, AHi float64 // row interval's value range of the first attribute
}

// RegionRule is a mined x-monotone region rule (§1.4):
// ((A, B) ∈ R) ⇒ (Objective = Value) where R is a connected region
// whose intersection with every B-slice is one A-interval.
type RegionRule struct {
	Class              RegionClass
	NumericA, NumericB string
	Objective          string
	ObjectiveValue     bool
	Bands              []RegionBand
	Support            float64
	Count              int
	Confidence         float64
	Baseline           float64
	Gain               float64
}

// Lift is Confidence / Baseline (+Inf when the baseline is zero).
func (r RegionRule) Lift() float64 {
	if r.Baseline == 0 {
		return math.Inf(1)
	}
	return r.Confidence / r.Baseline
}

// String renders the rule with a compact band list.
func (r RegionRule) String() string {
	val := "yes"
	if !r.ObjectiveValue {
		val = "no"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "((%s, %s) in %s region, %d bands) => (%s=%s)  [optimized-gain: support %.2f%%, confidence %.2f%%, lift %.2f, gain %.1f]",
		r.NumericA, r.NumericB, r.Class, len(r.Bands), r.Objective, val,
		100*r.Support, 100*r.Confidence, r.Lift(), r.Gain)
	return b.String()
}

// Describe renders every band, one per line.
func (r RegionRule) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.String())
	for _, band := range r.Bands {
		fmt.Fprintf(&b, "  %s in (%.6g, %.6g]: %s in [%.6g, %.6g]\n",
			r.NumericB, band.BLo, band.BHi, r.NumericA, band.ALo, band.AHi)
	}
	return b.String()
}

// RegionClass selects the 2-D region family for region mining — the
// three classes named in the paper's §1.4 in increasing generality. It
// is defined in the plan layer (the session query IR names classes
// too) and re-exported here; the constants alias plan's.
type RegionClass = plan.RegionClass

const (
	// RectangleClass is handled by Mine2D; listed for completeness.
	RectangleClass = plan.RectangleClass
	// RectilinearConvexClass regions intersect every row AND column in
	// one interval (KDD'97 companion [20]).
	RectilinearConvexClass = plan.RectilinearConvexClass
	// XMonotoneClass regions intersect every column in one interval
	// (SIGMOD'96 companion [7]).
	XMonotoneClass = plan.XMonotoneClass
)

// MineXMonotone mines the x-monotone region maximizing the gain
// Σ(v − MinConfidence·u) over the (numericA, numericB) plane — the
// §1.4 extension for regions that follow diagonal trends. Returns nil
// when no region achieves positive gain. gridSide buckets per axis
// (0 = default).
func MineXMonotone(rel relation.Relation, numericA, numericB, objective string,
	objectiveValue bool, gridSide int, cfg Config) (*RegionRule, error) {
	return mineRegion(rel, numericA, numericB, objective, objectiveValue, gridSide, cfg, XMonotoneClass)
}

// MineRectilinearConvex mines the gain-optimal rectilinear-convex
// region — connected, bulging outward then back in, intersecting every
// row and column in a single interval. Returns nil when no region
// achieves positive gain.
func MineRectilinearConvex(rel relation.Relation, numericA, numericB, objective string,
	objectiveValue bool, gridSide int, cfg Config) (*RegionRule, error) {
	return mineRegion(rel, numericA, numericB, objective, objectiveValue, gridSide, cfg, RectilinearConvexClass)
}

// mineRegion runs one region class for one pair on the session 2-D
// engine: one fused sampling scan for both axes' boundaries, one
// counting scan, then the parallel gain DP — two relation scans where
// the legacy path (mineRegionPerPair) pays three. Boundaries come from
// the same per-attribute random streams, and the parallel DPs are
// pinned identical to the serial kernels, so mined regions match the
// legacy path rule for rule.
func mineRegion(rel relation.Relation, numericA, numericB, objective string,
	objectiveValue bool, gridSide int, cfg Config, class RegionClass) (*RegionRule, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, err
	}
	return s.mineRegion(numericA, numericB, objective, objectiveValue, gridSide, class)
}

// mineRegionPerPair is the legacy single-pair region pipeline (two
// sampling passes plus one counting scan, serial DP kernels), kept as
// the differential-testing reference for the fused path.
func mineRegionPerPair(rel relation.Relation, numericA, numericB, objective string,
	objectiveValue bool, gridSide int, cfg Config, class RegionClass) (*RegionRule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gridSide == 0 {
		gridSide = DefaultGridSide
	}
	if gridSide < 1 {
		return nil, fmt.Errorf("miner: grid side %d must be positive", gridSide)
	}
	s := rel.Schema()
	aAttr := s.Index(numericA)
	if aAttr < 0 || s[aAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numericA)
	}
	bAttr := s.Index(numericB)
	if bAttr < 0 || s[bAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numericB)
	}
	if aAttr == bAttr {
		return nil, fmt.Errorf("miner: the two numeric attributes must differ")
	}
	objAttr := s.Index(objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, fmt.Errorf("miner: %q is not a Boolean attribute", objective)
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}

	rngA := attrRNG(cfg.Seed, aAttr)
	boundsA, err := bucketing.SampledBoundaries(rel, aAttr, gridSide, cfg.SampleFactor, rngA)
	if err != nil {
		return nil, err
	}
	rngB := attrRNG(cfg.Seed, bAttr)
	boundsB, err := bucketing.SampledBoundaries(rel, bAttr, gridSide, cfg.SampleFactor, rngB)
	if err != nil {
		return nil, err
	}
	grid, err := region.NewGrid(boundsA.NumBuckets(), boundsB.NumBuckets())
	if err != nil {
		return nil, err
	}
	// Per-row observed extremes of A (for band value ranges).
	minA := make([]float64, boundsA.NumBuckets())
	maxA := make([]float64, boundsA.NumBuckets())
	for i := range minA {
		minA[i], maxA[i] = math.Inf(1), math.Inf(-1)
	}
	n, hits := 0, 0
	err = rel.Scan(relation.ColumnSet{Numeric: []int{aAttr, bAttr}, Bool: []int{objAttr}},
		func(batch *relation.Batch) error {
			for row := 0; row < batch.Len; row++ {
				a := batch.Numeric[0][row]
				b := batch.Numeric[1][row]
				if math.IsNaN(a) || math.IsNaN(b) {
					continue
				}
				ra := boundsA.Locate(a)
				cb := boundsB.Locate(b)
				grid.U[ra][cb]++
				n++
				if batch.Bool[0][row] == objectiveValue {
					grid.V[ra][cb]++
					hits++
				}
				if a < minA[ra] {
					minA[ra] = a
				}
				if a > maxA[ra] {
					maxA[ra] = a
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("miner: no tuples with finite (%s, %s) values", numericA, numericB)
	}

	var xm region.XMonotoneRegion
	var ok bool
	switch class {
	case XMonotoneClass:
		xm, ok, err = region.MaxGainXMonotone(grid, cfg.MinConfidence)
	case RectilinearConvexClass:
		xm, ok, err = region.MaxGainRectilinearConvex(grid, cfg.MinConfidence)
	default:
		return nil, fmt.Errorf("miner: region class %v not supported here (rectangles use Mine2D)", class)
	}
	if err != nil {
		return nil, err
	}
	if !ok || xm.Gain <= 0 {
		return nil, nil
	}
	out := &RegionRule{
		Class:          class,
		NumericA:       numericA,
		NumericB:       numericB,
		Objective:      objective,
		ObjectiveValue: objectiveValue,
		Support:        float64(xm.Count) / float64(n),
		Count:          xm.Count,
		Confidence:     xm.Conf,
		Baseline:       float64(hits) / float64(n),
		Gain:           xm.Gain,
	}
	for _, ci := range xm.Columns {
		bLo, bHi := boundsB.BucketRange(ci.Col)
		band := RegionBand{BLo: bLo, BHi: bHi, ALo: math.Inf(1), AHi: math.Inf(-1)}
		for r := ci.Lo; r <= ci.Hi; r++ {
			if minA[r] < band.ALo {
				band.ALo = minA[r]
			}
			if maxA[r] > band.AHi {
				band.AHi = maxA[r]
			}
		}
		out.Bands = append(out.Bands, band)
	}
	return out, nil
}
