package miner

import (
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// shardedOf materializes the same deterministic tuple stream diskOf
// and Materialize produce, but split across the given number of shard
// files, so sharded differential tests compare bit-identical data.
func shardedOf(t *testing.T, src datagen.RowSource, n int, seed int64, shards int) *relation.ShardedRelation {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rel.oprs")
	if err := datagen.WriteSharded(path, src, n, seed, shards, 0); err != nil {
		t.Fatal(err)
	}
	sr, err := relation.OpenSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sr.Close() })
	return sr
}

// TestMineAllShardedMatchesSingleFile pins the sharded backend's core
// contract: MineAll over a sharded relation is rule-for-rule identical
// to MineAll over the equivalent single-file relation — for bank and
// retail data, serial and concurrent sub-scans, and with the parallel
// counting engine planning segments across shard boundaries (PEs > 1).
func TestMineAllShardedMatchesSingleFile(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	gens := []struct {
		name string
		gen  datagen.RowSource
	}{{"bank", bank}, {"retail", retail}}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{Buckets: 120, Seed: 7}},
		{"negations+gain", Config{Buckets: 80, Seed: 3, MineNegations: true, MineGain: true}},
		{"exact-domains", Config{Buckets: 60, Seed: 11, ExactDomainLimit: 100}},
		{"parallel-pes", Config{Buckets: 90, Seed: 5, PEs: 4}},
	}
	for _, g := range gens {
		single := diskOf(t, g.gen, 8000, 42)
		sharded := shardedOf(t, g.gen, 8000, 42, 3)
		for _, c := range cfgs {
			want, err := MineAll(single, c.cfg)
			if err != nil {
				t.Fatalf("%s/%s: single-file: %v", g.name, c.name, err)
			}
			if len(want.Rules) == 0 {
				t.Fatalf("%s/%s: degenerate differential test, no rules mined", g.name, c.name)
			}
			for _, ahead := range []int{0, 2} {
				sharded.SetConcurrentScans(ahead)
				got, err := MineAll(sharded, c.cfg)
				if err != nil {
					t.Fatalf("%s/%s/ahead=%d: sharded: %v", g.name, c.name, ahead, err)
				}
				sameRules(t, g.name+"/"+c.name, got, want)
			}
		}
	}
}

// TestMineAll2DShardedMatchesSingleFile is the 2-D counterpart: the
// fused all-pairs engine (rectangles of every kind plus both region
// classes) over a sharded relation must reproduce the single-file
// results exactly, including when its counting scan is segmented
// across shard boundaries.
func TestMineAll2DShardedMatchesSingleFile(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	single := diskOf(t, bank, 6000, 11)
	sharded := shardedOf(t, bank, 6000, 11, 4)
	s := single.Schema()
	obj := s[s.BooleanIndices()[0]].Name
	opt := Options2D{
		Objective: obj, ObjectiveValue: true, GridSide: 16,
		Kinds:   []RuleKind{OptimizedSupport, OptimizedConfidence, OptimizedGain},
		Regions: []RegionClass{XMonotoneClass, RectilinearConvexClass},
	}
	for _, cfg := range []Config{
		{MinSupport: 0.02, Seed: 3},
		{MinSupport: 0.02, Seed: 3, PEs: 4},
	} {
		want, err := MineAll2D(single, opt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rules) == 0 || len(want.Regions) == 0 {
			t.Fatalf("degenerate differential test: %d rules, %d regions", len(want.Rules), len(want.Regions))
		}
		got, err := MineAll2D(sharded, opt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rules, want.Rules) {
			t.Errorf("PEs=%d: sharded 2-D rectangle rules differ from single-file", cfg.PEs)
		}
		if !reflect.DeepEqual(got.Regions, want.Regions) {
			t.Errorf("PEs=%d: sharded 2-D region rules differ from single-file", cfg.PEs)
		}
	}
}

// TestMineAllShardedTwoScans holds the exactly-two-scans invariant
// across shards: sharding the storage must not change the pass count
// the fused pipeline issues against the logical relation.
func TestMineAllShardedTwoScans(t *testing.T) {
	shape, err := datagen.NewPerfShape(4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 5} {
		sharded := shardedOf(t, shape, 5000, 9, shards)
		counting := &relation.CountingRelation{R: sharded}
		res, err := MineAll(counting, Config{Buckets: 100, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rules) == 0 {
			t.Errorf("shards=%d: no rules mined", shards)
		}
		if counting.Scans != 2 {
			t.Errorf("shards=%d: MineAll issued %d scans, want exactly 2 (sampling + counting)",
				shards, counting.Scans)
		}
		if max := int64(2 * sharded.NumTuples()); counting.Rows > max {
			t.Errorf("shards=%d: scans delivered %d rows, want <= %d (two full passes)",
				shards, counting.Rows, max)
		}
	}
}
