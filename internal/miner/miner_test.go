package miner

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

func bankRelation(t testing.TB, n int) (*relation.MemoryRelation, datagen.BankConfig) {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return datagen.MustMaterialize(bank, n, 101), bank.Config()
}

func TestMineRecoversPlantedRule(t *testing.T) {
	rel, cfg := bankRelation(t, 60000)
	planted := cfg.CardLoan

	supRule, confRule, err := Mine(rel, "Balance", "CardLoan", true, nil, Config{
		MinSupport:    0.05,
		MinConfidence: 0.55,
		Buckets:       500,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if supRule == nil {
		t.Fatal("no optimized-support rule found")
	}
	// The planted range [3000, 20000] has inside confidence 0.65 and
	// outside 0.12, so the optimized-support rule at θ=0.55 should land
	// close to the planted range.
	overlapLo := math.Max(supRule.Low, planted.Range[0])
	overlapHi := math.Min(supRule.High, planted.Range[1])
	if overlapLo >= overlapHi {
		t.Errorf("support rule range [%g, %g] does not overlap planted %v", supRule.Low, supRule.High, planted.Range)
	}
	if supRule.Confidence < 0.55 {
		t.Errorf("support rule confidence %g below threshold", supRule.Confidence)
	}
	// The optimized-support rule maximizes support at confidence >= θ,
	// so it should contain essentially the whole planted high-confidence
	// core (which alone has confidence 0.65 > 0.55) and may legitimately
	// stretch further until dilution pulls confidence down to θ.
	if supRule.Low > planted.Range[0]*1.2 || supRule.High < planted.Range[1]*0.8 {
		t.Errorf("support rule range [%g, %g] fails to cover the planted core %v", supRule.Low, supRule.High, planted.Range)
	}
	if confRule == nil {
		t.Fatal("no optimized-confidence rule found")
	}
	if confRule.Support < 0.05-1e-9 {
		t.Errorf("confidence rule support %g below threshold", confRule.Support)
	}
	// The optimized-confidence rule seeks the highest-confidence cluster
	// of at least 5% support, which lives inside the planted range.
	if confRule.Low < planted.Range[0]*0.7 || confRule.High > planted.Range[1]*1.4 {
		t.Errorf("confidence rule range [%g, %g] should sit inside the planted core %v",
			confRule.Low, confRule.High, planted.Range)
	}
	if confRule.Confidence < supRule.Confidence-1e-9 {
		t.Errorf("optimized-confidence rule (%g) should not be less confident than the support rule (%g)",
			confRule.Confidence, supRule.Confidence)
	}
	if confRule.Lift() < 1.5 {
		t.Errorf("planted rule should show lift, got %g", confRule.Lift())
	}
}

func TestMineAllCoversAllCombinations(t *testing.T) {
	rel, _ := bankRelation(t, 20000)
	res, err := MineAll(rel, Config{Buckets: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 numeric × 3 Boolean, two kinds each: up to 18 rules; all
	// combinations should yield at least the optimized-support rule
	// given the generous default thresholds... at minimum expect more
	// than 9 rules and every pair present at least once.
	type key struct{ n, o string }
	seen := map[key]bool{}
	for _, r := range res.Rules {
		seen[key{r.Numeric, r.Objective}] = true
		if r.Support < 0 || r.Support > 1 || r.Confidence < 0 || r.Confidence > 1 {
			t.Errorf("rule out of range: %+v", r)
		}
		if r.Low > r.High {
			t.Errorf("inverted range: %+v", r)
		}
	}
	for _, n := range []string{"Balance", "Age", "ServiceYears"} {
		for _, o := range []string{"CardLoan", "Mortgage", "AutoWithdraw"} {
			if !seen[key{n, o}] {
				t.Errorf("no rule mined for (%s, %s)", n, o)
			}
		}
	}
	// Sorted by lift descending.
	for i := 1; i < len(res.Rules); i++ {
		if res.Rules[i].Lift() > res.Rules[i-1].Lift()+1e-9 {
			t.Errorf("rules not sorted by lift at %d", i)
		}
	}
	if res.Tuples != 20000 {
		t.Errorf("Tuples = %d", res.Tuples)
	}
}

func TestMineAllTopRuleIsPlanted(t *testing.T) {
	rel, _ := bankRelation(t, 40000)
	res, err := MineAll(rel, Config{Buckets: 300, Seed: 5, MinConfidence: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules")
	}
	top := res.Rules[0]
	// The strongest associations in the generator are Balance→CardLoan
	// (lift up to ~3.4) and Age→Mortgage (~2.8); the top rule must be
	// one of them.
	okTop := (top.Numeric == "Balance" && top.Objective == "CardLoan") ||
		(top.Numeric == "Age" && top.Objective == "Mortgage")
	if !okTop {
		t.Errorf("top rule is (%s, %s), want a planted association; rule: %s", top.Numeric, top.Objective, top)
	}
}

func TestMineDeterministicAcrossWorkerCounts(t *testing.T) {
	rel, _ := bankRelation(t, 10000)
	var prev []Rule
	for _, workers := range []int{1, 2, 8} {
		res, err := MineAll(rel, Config{Buckets: 100, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(res.Rules) != len(prev) {
				t.Fatalf("workers=%d: %d rules vs %d", workers, len(res.Rules), len(prev))
			}
			for i := range prev {
				if res.Rules[i] != prev[i] {
					t.Fatalf("workers=%d: rule %d differs:\n%v\n%v", workers, i, res.Rules[i], prev[i])
				}
			}
		}
		prev = res.Rules
	}
}

func TestMineDeterministicAcrossPECounts(t *testing.T) {
	rel, _ := bankRelation(t, 15000)
	var prev []Rule
	for _, pes := range []int{1, 4, 16} {
		res, err := MineAll(rel, Config{Buckets: 100, Seed: 11, PEs: pes})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(res.Rules) != len(prev) {
				t.Fatalf("PEs=%d: %d rules vs %d", pes, len(res.Rules), len(prev))
			}
			for i := range prev {
				if res.Rules[i] != prev[i] {
					t.Fatalf("PEs=%d: rule %d differs", pes, i)
				}
			}
		}
		prev = res.Rules
	}
}

func TestMineWithConjunctiveCondition(t *testing.T) {
	ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	rel := datagen.MustMaterialize(ret, 40000, 19)
	// Generalized rule: (Amount ∈ I) ∧ (Pizza=yes) ⇒ (Coke=yes).
	supRule, _, err := Mine(rel, "Amount", "Coke", true,
		[]Condition{{Attr: "Pizza", Value: true}}, Config{Buckets: 200, MinConfidence: 0.55, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if supRule == nil {
		t.Fatal("no rule under condition (Pizza=yes); lifted P(Coke|Pizza)=0.7 should exceed 0.55")
	}
	if !strings.Contains(supRule.Condition, "Pizza=yes") {
		t.Errorf("condition not recorded: %q", supRule.Condition)
	}
	if !strings.Contains(supRule.String(), "Pizza=yes") {
		t.Errorf("String() omits condition: %s", supRule)
	}
	// Baseline under the condition should be ~0.7 (lifted), not ~0.35.
	if supRule.Baseline < 0.6 {
		t.Errorf("conditional baseline = %g, want ~0.7", supRule.Baseline)
	}

	// The unconditional rule has a much lower baseline.
	unc, _, err := Mine(rel, "Amount", "Coke", true, nil, Config{Buckets: 200, MinConfidence: 0.3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if unc == nil {
		t.Fatal("no unconditional rule")
	}
	if unc.Baseline >= supRule.Baseline {
		t.Errorf("unconditional baseline %g should be below conditional %g", unc.Baseline, supRule.Baseline)
	}
}

func TestMineNegations(t *testing.T) {
	rel, _ := bankRelation(t, 10000)
	res, err := MineAll(rel, Config{Buckets: 100, Seed: 2, MineNegations: true})
	if err != nil {
		t.Fatal(err)
	}
	sawNeg := false
	for _, r := range res.Rules {
		if !r.ObjectiveValue {
			sawNeg = true
			if !strings.Contains(r.String(), "=no") {
				t.Errorf("negated rule prints wrong: %s", r)
			}
		}
	}
	if !sawNeg {
		t.Errorf("MineNegations produced no (C=no) rules")
	}
}

func TestMineValidation(t *testing.T) {
	rel, _ := bankRelation(t, 100)
	if _, _, err := Mine(rel, "Nope", "CardLoan", true, nil, Config{}); err == nil {
		t.Errorf("unknown numeric attribute accepted")
	}
	if _, _, err := Mine(rel, "CardLoan", "CardLoan", true, nil, Config{}); err == nil {
		t.Errorf("boolean as numeric accepted")
	}
	if _, _, err := Mine(rel, "Balance", "Balance", true, nil, Config{}); err == nil {
		t.Errorf("numeric as objective accepted")
	}
	if _, _, err := Mine(rel, "Balance", "CardLoan", true, []Condition{{Attr: "Balance"}}, Config{}); err == nil {
		t.Errorf("numeric condition accepted")
	}
	if _, err := MineAll(rel, Config{MinSupport: 1.5}); err == nil {
		t.Errorf("MinSupport > 1 accepted")
	}
	if _, err := MineAll(rel, Config{MinConfidence: -0.1}); err == nil {
		t.Errorf("negative MinConfidence accepted")
	}
	if _, err := MineAll(rel, Config{Buckets: -5}); err == nil {
		t.Errorf("negative bucket count accepted")
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := MineAll(empty, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
	boolOnly := relation.MustNewMemoryRelation(relation.Schema{{Name: "B", Kind: relation.Boolean}})
	boolOnly.MustAppend(nil, []bool{true})
	if _, err := MineAll(boolOnly, Config{}); err == nil {
		t.Errorf("relation without numeric attributes accepted")
	}
	numOnly := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	numOnly.MustAppend([]float64{1}, nil)
	if _, err := MineAll(numOnly, Config{}); err == nil {
		t.Errorf("relation without boolean attributes accepted")
	}
}

func TestMineFilterExcludesEverything(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	for i := 0; i < 100; i++ {
		rel.MustAppend([]float64{float64(i)}, []bool{false}) // B always no
	}
	sup, conf, err := Mine(rel, "X", "B", true, []Condition{{Attr: "B", Value: true}}, Config{Buckets: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sup != nil || conf != nil {
		t.Errorf("rules mined from zero filtered tuples: %v %v", sup, conf)
	}
}

func TestRuleKindJSON(t *testing.T) {
	b, err := json.Marshal(OptimizedConfidence)
	if err != nil || string(b) != `"optimized-confidence"` {
		t.Errorf("RuleKind JSON = %s (%v)", b, err)
	}
	r := Rule{Kind: OptimizedGain, Numeric: "X", Objective: "B", Confidence: 0.5}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"optimized-gain"`) {
		t.Errorf("rule JSON missing kind name: %s", out)
	}
}

func TestRulePValue(t *testing.T) {
	// Strong planted rule: tiny p-value. Null-level rule: p around 0.5.
	strong := Rule{Count: 1000, Confidence: 0.65, Baseline: 0.2}
	if p := strong.PValue(); p > 1e-9 {
		t.Errorf("strong rule p-value %g, want tiny", p)
	}
	nullish := Rule{Count: 1000, Confidence: 0.2, Baseline: 0.2}
	if p := nullish.PValue(); p < 0.4 || p > 0.6 {
		t.Errorf("null rule p-value %g, want ~0.5", p)
	}
	if p := (Rule{Count: 0, Confidence: 1, Baseline: 0.5}).PValue(); p != 1 {
		t.Errorf("degenerate rule p-value %g, want 1", p)
	}
	// Mined planted rules should be overwhelmingly significant.
	rel, _ := bankRelation(t, 30000)
	_, conf, err := Mine(rel, "Balance", "CardLoan", true, nil, Config{Buckets: 200, Seed: 1})
	if err != nil || conf == nil {
		t.Fatal(err)
	}
	if p := conf.PValue(); p > 1e-12 {
		t.Errorf("planted rule p-value %g, want ≈0", p)
	}
}

func TestRuleStringAndLift(t *testing.T) {
	r := Rule{
		Kind: OptimizedConfidence, Numeric: "Balance", Low: 100, High: 200,
		Objective: "CardLoan", ObjectiveValue: true,
		Support: 0.25, Confidence: 0.8, Baseline: 0.2, Count: 250,
	}
	s := r.String()
	for _, want := range []string{"Balance", "[100, 200]", "CardLoan=yes", "optimized-confidence", "80.00%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if r.Lift() != 4 {
		t.Errorf("Lift = %g, want 4", r.Lift())
	}
	r.Baseline = 0
	if !math.IsInf(r.Lift(), 1) {
		t.Errorf("zero baseline should give +Inf lift")
	}
	if OptimizedSupport.String() != "optimized-support" || RuleKind(9).String() == "" {
		t.Errorf("RuleKind strings wrong")
	}
}
