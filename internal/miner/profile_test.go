package miner

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildProfileShape(t *testing.T) {
	rel := twoClusterRelation(t, 30000)
	prof, err := BuildProfile(rel, "X", "B", true, 20, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Buckets) != 20 {
		t.Fatalf("buckets = %d, want 20", len(prof.Buckets))
	}
	total := 0
	for i, b := range prof.Buckets {
		total += b.Support
		if b.Conf < 0 || b.Conf > 1 {
			t.Errorf("bucket %d conf %g out of range", i, b.Conf)
		}
		if b.Lo > b.Hi {
			t.Errorf("bucket %d inverted extremes [%g, %g]", i, b.Lo, b.Hi)
		}
		if i > 0 && b.Lo < prof.Buckets[i-1].Hi {
			t.Errorf("buckets %d and %d overlap", i-1, i)
		}
	}
	if total != prof.N {
		t.Errorf("bucket supports sum to %d, want %d", total, prof.N)
	}
	// The high-confidence cluster [100, 200] must show up: a bucket
	// centered inside it has high confidence (bucket edges may straddle
	// the cluster boundary slightly) while the background stays low.
	sawHot, sawCold := false, false
	for _, b := range prof.Buckets {
		mid := (b.Lo + b.Hi) / 2
		if mid >= 100 && mid <= 200 && b.Conf > 0.6 {
			sawHot = true
		}
		if b.Lo > 750 && b.Conf < 0.2 {
			sawCold = true
		}
	}
	if !sawHot || !sawCold {
		t.Errorf("planted structure not visible in profile (hot=%v cold=%v)", sawHot, sawCold)
	}
}

func TestProfileRender(t *testing.T) {
	rel := twoClusterRelation(t, 10000)
	prof, err := BuildProfile(rel, "X", "B", true, 10, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prof.Render(&buf, 100, 200, true)
	out := buf.String()
	if !strings.Contains(out, "confidence of (B=yes) by X bucket") {
		t.Errorf("header missing: %s", out)
	}
	if !strings.Contains(out, "█") {
		t.Errorf("bars missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11 { // header + 10 buckets
		t.Errorf("expected 11 lines, got %d", len(lines))
	}
	// Without highlight no ◆ marker appears.
	buf.Reset()
	prof.Render(&buf, 0, 0, false)
	if strings.Contains(buf.String(), "◆") {
		t.Errorf("unexpected highlight marker")
	}
}

func TestBuildProfileValidation(t *testing.T) {
	rel := twoClusterRelation(t, 100)
	if _, err := BuildProfile(rel, "Nope", "B", true, 10, Config{}); err == nil {
		t.Errorf("unknown numeric accepted")
	}
	if _, err := BuildProfile(rel, "X", "Nope", true, 10, Config{}); err == nil {
		t.Errorf("unknown objective accepted")
	}
	if _, err := BuildProfile(rel, "X", "B", true, 0, Config{}); err == nil {
		t.Errorf("zero buckets accepted")
	}
}
