package miner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"optrule/internal/relation"
)

// savingsRelation plants a Section 5 scenario: customers whose
// CheckingAccount lies in [1000, 3000] have SavingAccount ~ N(50000,
// 5000); everyone else ~ N(8000, 2000).
func savingsRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "CheckingAccount", Kind: relation.Numeric},
		{Name: "SavingAccount", Kind: relation.Numeric},
	})
	rng := rand.New(rand.NewSource(55))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		checking := rng.Float64() * 10000
		var saving float64
		if checking >= 1000 && checking <= 3000 {
			saving = 50000 + rng.NormFloat64()*5000
		} else {
			saving = 8000 + rng.NormFloat64()*2000
		}
		rel.MustAppend([]float64{checking, saving}, nil)
	}
	return rel
}

func TestMaxAverageRangeFindsRichSegment(t *testing.T) {
	rel := savingsRelation(t, 50000)
	got, err := MaxAverageRange(rel, "CheckingAccount", "SavingAccount", 0.10, Config{Buckets: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ~20% of checking values fall in [1000,3000]; with a 10% support
	// floor the best range should sit inside the rich segment.
	if got.Low < 500 || got.High > 3600 {
		t.Errorf("range [%g, %g] strays from planted [1000, 3000]", got.Low, got.High)
	}
	if got.Average < 30000 {
		t.Errorf("average %g too low; planted segment averages ~50000", got.Average)
	}
	if got.Support < 0.10-1e-9 {
		t.Errorf("support %g below the floor", got.Support)
	}
	if got.OverallAverage > got.Average {
		t.Errorf("selected average should beat overall (%g vs %g)", got.Average, got.OverallAverage)
	}
	if !strings.Contains(got.String(), "CheckingAccount") {
		t.Errorf("String() = %q", got.String())
	}
}

func TestMaxSupportRangeWithHighThreshold(t *testing.T) {
	rel := savingsRelation(t, 50000)
	got, err := MaxSupportRange(rel, "CheckingAccount", "SavingAccount", 40000, Config{Buckets: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Average < 40000 {
		t.Errorf("average %g below the 40000 threshold", got.Average)
	}
	// Only the rich segment can sustain a 40k average; its support is
	// about 20%. The optimizer legitimately pads the segment with fringe
	// buckets until the average sits at the threshold (support ≈ 0.26,
	// average ≈ 40000), so the range window allows a few hundred units
	// of fringe on either side.
	if got.Support < 0.1 || got.Support > 0.3 {
		t.Errorf("support %g, want ≈0.2 (the planted segment)", got.Support)
	}
	if got.Low < 300 || got.High > 3700 {
		t.Errorf("range [%g, %g] strays from planted [1000, 3000]", got.Low, got.High)
	}
}

func TestMaxSupportRangeTrivialThreshold(t *testing.T) {
	// Threshold at or below the overall average: whole domain wins
	// (the paper calls this the trivial case).
	rel := savingsRelation(t, 20000)
	got, err := MaxSupportRange(rel, "CheckingAccount", "SavingAccount", 0, Config{Buckets: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Support-1) > 1e-9 {
		t.Errorf("trivial threshold should select everything, support = %g", got.Support)
	}
}

func TestMaxAverageRangeUnreachableSupport(t *testing.T) {
	rel := savingsRelation(t, 1000)
	if _, err := MaxAverageRange(rel, "CheckingAccount", "SavingAccount", 1.0, Config{Buckets: 50}); err == nil {
		// Support 1.0 is satisfiable only by the whole range, which IS a
		// valid answer — so this must NOT error.
		t.Log("full-domain support accepted (expected)")
	}
	if _, err := MaxSupportRange(rel, "CheckingAccount", "SavingAccount", 1e12, Config{Buckets: 50}); err == nil {
		t.Errorf("unreachable average threshold accepted")
	}
}

func TestAverageValidation(t *testing.T) {
	rel := savingsRelation(t, 100)
	if _, err := MaxAverageRange(rel, "Nope", "SavingAccount", 0.1, Config{}); err == nil {
		t.Errorf("unknown driver accepted")
	}
	if _, err := MaxAverageRange(rel, "CheckingAccount", "Nope", 0.1, Config{}); err == nil {
		t.Errorf("unknown target accepted")
	}
	if _, err := MaxAverageRange(rel, "CheckingAccount", "SavingAccount", -0.1, Config{}); err == nil {
		t.Errorf("negative support accepted")
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := MaxAverageRange(empty, "CheckingAccount", "SavingAccount", 0.1, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
	if _, err := MaxSupportRange(rel, "CheckingAccount", "SavingAccount", 1e9, Config{Buckets: -1}); err == nil {
		t.Errorf("bad config accepted")
	}
}

func TestMaxAverageRangeSelfDriver(t *testing.T) {
	// Driver == target: the max-average range with a support floor must
	// be the top tail of the distribution.
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	for i := 1; i <= 1000; i++ {
		rel.MustAppend([]float64{float64(i)}, nil)
	}
	got, err := MaxAverageRange(rel, "X", "X", 0.10, Config{Buckets: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Low < 850 {
		t.Errorf("top-tail range should start near 900, got [%g, %g]", got.Low, got.High)
	}
	if got.High != 1000 {
		t.Errorf("range should end at the max, got %g", got.High)
	}
}
