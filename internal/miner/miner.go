// Package miner orchestrates end-to-end rule mining: the "complete set
// of optimized rules for all combinations of hundreds of numeric and
// Boolean attributes" workload the paper's introduction targets.
//
// The engine is a plan→execute→extract SESSION (session.go): every
// query — 1-D rules, §4.3 conjunctive forms, ranked ranges, Section 5
// average-operator queries, and the §1.4 two-dimensional layer — is
// resolved by internal/plan into the sufficient statistics it needs,
// a batch's deduplicated misses are materialized in at most TWO
// sequential scans of the relation (one fused sampling scan building
// every bucket boundary, one fused counting scan filling every count
// group and pair grid), and the Section 4 hull/Kadane/top-k kernels
// then run on the in-memory statistics over a worker pool
// (Config.Workers). A Session's LRU statistics cache answers repeat
// queries with different thresholds or kinds in ZERO scans.
//
// The paper's premise is that the database is far larger than main
// memory, so sequential passes are the currency of performance: the
// fused pipeline reads a d-numeric-attribute relation twice end to end
// where a per-attribute pipeline would read it d+1 times — and a
// session batch reads it twice for ANY number of queries. The one-shot
// functions (MineAll, Mine, MineTopK, …) wrap a throwaway session; the
// pre-session pipelines survive as differential-test references
// (mineAllPerAttribute, legacyMine, Mine2DPerPair, …).
package miner

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/plan"
	"optrule/internal/relation"
	"optrule/internal/stats"
)

// RuleKind says which optimization produced a rule. It is defined in
// the plan layer (the session query IR names kinds too) and
// re-exported here; the constants alias plan's.
type RuleKind = plan.RuleKind

const (
	// OptimizedSupport rules maximize support subject to a minimum
	// confidence (Algorithms 4.3 + 4.4).
	OptimizedSupport = plan.OptimizedSupport
	// OptimizedConfidence rules maximize confidence subject to a
	// minimum support (Algorithms 4.1 + 4.2).
	OptimizedConfidence = plan.OptimizedConfidence
	// OptimizedGain rules maximize the gain Σ(v_i − θ·u_i): the excess
	// number of hits over what the confidence threshold θ requires.
	// Discussed at the end of the paper's §4.2 (Bentley/Kadane) and
	// developed as a rule class in the authors' follow-up work; found in
	// O(M) with Kadane's algorithm. Unlike the other two kinds, gain
	// balances support and confidence in a single objective.
	OptimizedGain = plan.OptimizedGain
)

// Rule is one mined optimized association rule
// (A ∈ [Low, High]) ⇒ (Objective = ObjectiveValue), possibly under a
// conjunctive presumptive condition (Section 4.3).
type Rule struct {
	Kind RuleKind
	// Numeric is the name of the range attribute A.
	Numeric string
	// Low and High are the endpoints of the discovered range [v1, v2].
	// They are the minimum and maximum attribute values actually
	// observed inside the selected buckets, so the interval is the
	// paper's closed range over real data values.
	Low, High float64
	// Objective is the name of the Boolean objective attribute C.
	Objective string
	// ObjectiveValue is the required value of C (true = yes).
	ObjectiveValue bool
	// Condition describes the presumptive conjunct C1, empty if none.
	Condition string
	// Support is the fraction of (filtered) tuples inside the range.
	Support float64
	// Count is the number of (filtered) tuples inside the range.
	Count int
	// Confidence is the fraction of in-range tuples meeting the objective.
	Confidence float64
	// Baseline is the overall fraction of (filtered) tuples meeting the
	// objective — the probability the rule must beat to be interesting.
	Baseline float64
	// Buckets is the number of non-empty buckets the range was chosen from.
	Buckets int
	// Gain is Σ(v_i − θ·u_i) over the range, set for OptimizedGain rules
	// (θ = MinConfidence): the number of hits in excess of the threshold.
	Gain float64
}

// Lift is Confidence / Baseline; values well above 1 mark interesting
// rules. Returns +Inf when the baseline is zero.
func (r Rule) Lift() float64 {
	if r.Baseline == 0 {
		return math.Inf(1)
	}
	return r.Confidence / r.Baseline
}

// PValue returns the one-sided p-value of the rule's confidence
// exceeding its baseline under the null hypothesis that tuples in the
// range meet the objective at the baseline rate, using the normal
// approximation to the binomial. Small values mark rules unlikely to be
// range-selection flukes. Returns 1 for degenerate rules.
func (r Rule) PValue() float64 {
	if r.Count <= 0 || r.Baseline <= 0 || r.Baseline >= 1 {
		return 1
	}
	k := int(r.Confidence*float64(r.Count) + 0.5)
	z := stats.BinomialZScore(k, r.Count, r.Baseline)
	return stats.NormalUpperTail(z)
}

// String renders the rule in the paper's notation.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s in [%.6g, %.6g])", r.Numeric, r.Low, r.High)
	if r.Condition != "" {
		fmt.Fprintf(&b, " and %s", r.Condition)
	}
	// Conjunctive objectives (MineConjunctive) arrive pre-rendered as
	// "(A=yes) and (B=no)"; simple objectives are a bare attribute name.
	obj := r.Objective
	if !strings.Contains(obj, "=") {
		val := "yes"
		if !r.ObjectiveValue {
			val = "no"
		}
		obj = fmt.Sprintf("(%s=%s)", r.Objective, val)
	}
	fmt.Fprintf(&b, " => %s  [%s: support %.2f%%, confidence %.2f%%, lift %.2f]",
		obj, r.Kind, 100*r.Support, 100*r.Confidence, r.Lift())
	return b.String()
}

// Config controls mining.
type Config struct {
	// MinSupport is the minimum support threshold as a fraction of the
	// (filtered) tuples, used by optimized-confidence rules. Default 0.05.
	MinSupport float64
	// MinConfidence is the minimum confidence threshold for
	// optimized-support rules. Default 0.5.
	MinConfidence float64
	// Buckets is M, the number of almost equi-depth buckets. Default 1000.
	Buckets int
	// SampleFactor is S/M for Algorithm 3.1. Default 40 (the paper's
	// choice; see Figure 1).
	SampleFactor int
	// Seed makes mining deterministic. The per-attribute sample streams
	// are derived from it.
	Seed int64
	// Workers bounds the number of numeric attributes mined
	// concurrently. Default runtime.GOMAXPROCS(0).
	Workers int
	// MineNegations also mines rules whose objective is (C = no).
	MineNegations bool
	// PEs, when greater than 1, runs each counting scan with that many
	// parallel processing elements (Algorithm 3.2) provided the relation
	// supports range scans. Workers parallelizes ACROSS attributes; PEs
	// parallelizes WITHIN one attribute's scan — useful when mining a
	// single attribute pair of a large relation.
	PEs int
	// MineGain also mines optimized-gain rules (maximize
	// Σ(v − MinConfidence·u) with Kadane's algorithm) alongside the two
	// paper-standard kinds in MineAll.
	MineGain bool
	// ExactDomainLimit, when positive, enables finest buckets
	// (Definition 2.5 / Example 2.4): if a numeric attribute has at most
	// this many distinct values (ages, counts, ratings, …), one bucket
	// per distinct value is used and the optimized rules are exact
	// rather than bucket approximations. Attributes with more distinct
	// values fall back to the sampled equi-depth buckets.
	ExactDomainLimit int
	// Scatter enables the fault-tolerant scatter-gather counting
	// executor: Scatter.Workers > 0 scatters each counting scan one
	// task per shard across an in-process worker pool, with retries,
	// re-routing, and a direct-scan fallback. Mined rules are identical
	// at every worker count (see plan.ScatterConfig); the zero value
	// keeps the classic executors.
	Scatter ScatterConfig
}

// ScatterConfig tunes the scatter-gather counting executor; see
// plan.ScatterConfig.
type ScatterConfig = plan.ScatterConfig

// ScatterStats carries the scatter coordinator's recovery counters;
// see plan.ScatterStats.
type ScatterStats = plan.ScatterStats

// Worker executes scatter-gather counting tasks; see plan.Worker.
type Worker = plan.Worker

// NewLocalWorker returns the in-process scatter-gather worker over
// rel; see plan.NewLocalWorker.
func NewLocalWorker(rel relation.Relation, ref bool) Worker {
	return plan.NewLocalWorker(rel, ref)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 0.05
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.5
	}
	if c.Buckets == 0 {
		c.Buckets = 1000
	}
	if c.SampleFactor == 0 {
		c.SampleFactor = 40
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.MinSupport < 0 || c.MinSupport > 1 {
		return fmt.Errorf("miner: MinSupport %g out of [0,1]", c.MinSupport)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return fmt.Errorf("miner: MinConfidence %g out of [0,1]", c.MinConfidence)
	}
	if c.Buckets < 1 {
		return fmt.Errorf("miner: Buckets %d must be positive", c.Buckets)
	}
	if c.SampleFactor < 1 {
		return fmt.Errorf("miner: SampleFactor %d must be positive", c.SampleFactor)
	}
	if c.Workers < 0 {
		return fmt.Errorf("miner: negative Workers %d", c.Workers)
	}
	return nil
}

// condString renders a conjunction of Boolean conditions.
func condString(s relation.Schema, conds []bucketing.BoolCond) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		val := "yes"
		if !c.Want {
			val = "no"
		}
		parts[i] = fmt.Sprintf("(%s=%s)", s[c.Attr].Name, val)
	}
	return strings.Join(parts, " and ")
}

// attrRNG derives the deterministic random stream for one numeric
// attribute. EVERY entry point that buckets an attribute must use this
// — the session engine, the legacy per-attribute pipeline, and the
// targeted queries stay boundary-identical (and therefore
// rule-identical) only because they all draw from the same stream. The
// formula lives in plan.AttrRNG, next to the executor that consumes it.
func attrRNG(seed int64, attr int) *rand.Rand {
	return plan.AttrRNG(seed, attr)
}

// attrBoundaries picks the bucketing for one numeric attribute: finest
// buckets when the domain is small enough and exact mining is enabled,
// otherwise the randomized equi-depth buckets of Algorithm 3.1.
func attrBoundaries(rel relation.Relation, numAttr int, cfg Config, rng *rand.Rand) (bucketing.Boundaries, error) {
	if cfg.ExactDomainLimit > 0 {
		bounds, err := bucketing.DistinctValueBoundaries(rel, numAttr, cfg.ExactDomainLimit)
		if err == nil {
			return bounds, nil
		}
		// Large or empty domains fall back to sampling below.
	}
	return bucketing.SampledBoundaries(rel, numAttr, cfg.Buckets, cfg.SampleFactor, rng)
}

// countScan performs the counting pass, fanning out over PEs
// (Algorithm 3.2) when configured and supported by the relation.
func countScan(rel relation.Relation, driver int, bounds bucketing.Boundaries,
	opts bucketing.Options, cfg Config) (*bucketing.Counts, error) {
	if cfg.PEs > 1 {
		if rs, ok := rel.(relation.RangeScanner); ok {
			return bucketing.ParallelCount(rs, driver, bounds, opts, cfg.PEs)
		}
	}
	return bucketing.Count(rel, driver, bounds, opts)
}

// attrRules mines all rules for one numeric attribute. The counting
// scan covers every requested objective in a single pass.
func attrRules(rel relation.Relation, numAttr int, objectives []bucketing.BoolCond,
	filter []bucketing.BoolCond, cfg Config, rng *rand.Rand) ([]Rule, error) {
	s := rel.Schema()
	bounds, err := attrBoundaries(rel, numAttr, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("miner: bucketing %s: %w", s[numAttr].Name, err)
	}
	counts, err := countScan(rel, numAttr, bounds, bucketing.Options{
		Bools:         objectives,
		Filter:        filter,
		TrackExtremes: true,
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("miner: counting %s: %w", s[numAttr].Name, err)
	}
	return rulesFromCounts(s, numAttr, objectives, filter, cfg, counts)
}

// rulesFromCounts applies the Section 4 optimized-rule algorithms to
// one attribute's per-bucket counts with the config's kind selection.
// Pure CPU on in-memory counts: this is the tail of the legacy
// per-attribute path and delegates to the session engine's extraction,
// so both produce rule-for-rule identical output.
func rulesFromCounts(s relation.Schema, numAttr int, objectives []bucketing.BoolCond,
	filter []bucketing.BoolCond, cfg Config, counts *bucketing.Counts) ([]Rule, error) {
	kinds := []RuleKind{OptimizedSupport, OptimizedConfidence}
	if cfg.MineGain {
		kinds = append(kinds, OptimizedGain)
	}
	return extractRulesFromCounts(s, numAttr, objectives, filter, kinds,
		cfg.MinSupport, cfg.MinConfidence, counts)
}

// extractRulesFromCounts is the kind-selectable rule extraction every
// 1-D path funnels through. For each objective it emits the requested
// kinds in the fixed order support, confidence, gain (whatever subset
// kinds names), which keeps the lift-sorted assembly stable across the
// session and legacy pipelines.
func extractRulesFromCounts(s relation.Schema, numAttr int, objectives []bucketing.BoolCond,
	filter []bucketing.BoolCond, kinds []RuleKind, minSupport, minConfidence float64,
	counts *bucketing.Counts) ([]Rule, error) {
	if counts.N == 0 {
		return nil, nil // filter excluded everything; no rules
	}
	compact, _ := counts.Compact()
	cond := condString(s, filter)

	var rules []Rule
	var err error
	for k, obj := range objectives {
		v := make([]float64, compact.M)
		hits := 0
		for i, c := range compact.V[k] {
			v[i] = float64(c)
			hits += c
		}
		baseline := float64(hits) / float64(compact.N)
		base := Rule{
			Numeric:        s[numAttr].Name,
			Objective:      s[obj.Attr].Name,
			ObjectiveValue: obj.Want,
			Condition:      cond,
			Baseline:       baseline,
			Buckets:        compact.M,
		}
		rules, err = appendKindRules(rules, base, compact, v, kinds, minSupport, minConfidence)
		if err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// wantKind reports whether kinds names kind.
func wantKind(kinds []RuleKind, kind RuleKind) bool {
	for _, k := range kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// appendKindRules runs the requested Section 4 optimizations over one
// (u, v) bucket sequence and appends the found rules to rules, always
// in the order support, confidence, gain.
func appendKindRules(rules []Rule, base Rule, compact *bucketing.Counts, v []float64,
	kinds []RuleKind, minSupport, minConfidence float64) ([]Rule, error) {
	if wantKind(kinds, OptimizedSupport) {
		if p, ok, err := core.OptimalSupportPair(compact.U, v, minConfidence); err != nil {
			return nil, err
		} else if ok {
			r := base
			r.Kind = OptimizedSupport
			fillPair(&r, p, compact)
			rules = append(rules, r)
		}
	}
	if wantKind(kinds, OptimizedConfidence) {
		minSupCount := minSupport * float64(compact.N)
		if p, ok, err := core.OptimalSlopePair(compact.U, v, minSupCount); err != nil {
			return nil, err
		} else if ok {
			r := base
			r.Kind = OptimizedConfidence
			fillPair(&r, p, compact)
			rules = append(rules, r)
		}
	}
	if wantKind(kinds, OptimizedGain) {
		gs, gt, gain, err := core.MaxGainRange(compact.U, v, minConfidence)
		if err != nil {
			return nil, err
		}
		if gain > 0 {
			r := base
			r.Kind = OptimizedGain
			r.Gain = gain
			count, sumV := 0, 0.0
			for i := gs; i <= gt; i++ {
				count += compact.U[i]
				sumV += v[i]
			}
			r.Low = compact.MinVal[gs]
			r.High = compact.MaxVal[gt]
			r.Count = count
			r.Support = float64(count) / float64(compact.N)
			r.Confidence = sumV / float64(count)
			rules = append(rules, r)
		}
	}
	return rules, nil
}

// fillPair copies a bucket-range solution into a Rule.
func fillPair(r *Rule, p core.Pair, c *bucketing.Counts) {
	r.Low = c.MinVal[p.S]
	r.High = c.MaxVal[p.T]
	r.Count = p.Count
	r.Support = float64(p.Count) / float64(c.N)
	r.Confidence = p.Conf
}

// Result is the output of MineAll.
type Result struct {
	Rules  []Rule
	Tuples int
	Config Config
}

// mineAllSetup validates cfg and the relation and derives the shared
// inputs of both MineAll pipelines: the numeric attribute positions and
// the Boolean objective conditions.
func mineAllSetup(rel relation.Relation, cfg Config) (Config, []int, []bucketing.BoolCond, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return cfg, nil, nil, err
	}
	s := rel.Schema()
	if rel.NumTuples() == 0 {
		return cfg, nil, nil, fmt.Errorf("miner: empty relation")
	}
	numIdx := s.NumericIndices()
	if len(numIdx) == 0 {
		return cfg, nil, nil, fmt.Errorf("miner: no numeric attributes")
	}
	var objectives []bucketing.BoolCond
	for _, b := range s.BooleanIndices() {
		objectives = append(objectives, bucketing.BoolCond{Attr: b, Want: true})
		if cfg.MineNegations {
			objectives = append(objectives, bucketing.BoolCond{Attr: b, Want: false})
		}
	}
	if len(objectives) == 0 {
		return cfg, nil, nil, fmt.Errorf("miner: no Boolean attributes to use as objectives")
	}
	return cfg, numIdx, objectives, nil
}

// assembleResult orders per-attribute rule sets by schema position and
// sorts the merged set by descending lift.
func assembleResult(rel relation.Relation, cfg Config, byPos [][]Rule) *Result {
	res := &Result{Tuples: rel.NumTuples(), Config: cfg}
	for _, rs := range byPos {
		res.Rules = append(res.Rules, rs...)
	}
	sort.SliceStable(res.Rules, func(i, j int) bool {
		return res.Rules[i].Lift() > res.Rules[j].Lift()
	})
	return res
}

// MineAll mines optimized-support and optimized-confidence rules for
// every (numeric attribute, Boolean attribute) combination of the
// relation, using cfg. Rules are sorted by descending lift.
//
// It is a thin wrapper over a throwaway Session running the
// plan→execute engine: one fused sampling scan builds boundaries for
// every numeric attribute, one fused counting scan produces per-bucket
// counts for every attribute, and the Section 4 algorithms run over
// the in-memory counts on a worker pool — so the relation is read
// exactly twice end to end no matter how many numeric attributes it
// has. Output is rule-for-rule identical to mining each attribute
// independently.
func MineAll(rel relation.Relation, cfg Config) (*Result, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, err
	}
	return s.MineAll()
}

// mineAllPerAttribute is the legacy unfused pipeline: one sampling pass
// plus one counting scan per numeric attribute (d+1 relation reads for
// d attributes). Kept as the differential-testing reference for the
// fused MineAll, which must produce rule-for-rule identical output.
func mineAllPerAttribute(rel relation.Relation, cfg Config) (*Result, error) {
	cfg, numIdx, objectives, err := mineAllSetup(rel, cfg)
	if err != nil {
		return nil, err
	}
	type job struct {
		pos  int
		attr int
	}
	type out struct {
		pos   int
		rules []Rule
		err   error
	}
	jobs := make(chan job)
	outs := make(chan out, len(numIdx))
	workers := cfg.Workers
	if workers > len(numIdx) {
		workers = len(numIdx)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// Independent deterministic stream per attribute.
				rng := attrRNG(cfg.Seed, j.attr)
				rules, err := attrRules(rel, j.attr, objectives, nil, cfg, rng)
				outs <- out{pos: j.pos, rules: rules, err: err}
			}
		}()
	}
	for pos, attr := range numIdx {
		jobs <- job{pos: pos, attr: attr}
	}
	close(jobs)
	wg.Wait()
	close(outs)

	byPos := make([][]Rule, len(numIdx))
	for o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		byPos[o.pos] = o.rules
	}
	return assembleResult(rel, cfg, byPos), nil
}

// Mine computes the two optimized rules for a single numeric attribute
// and Boolean objective, optionally under a conjunction of presumptive
// Boolean conditions (the generalized rules of Section 4.3:
// (A ∈ [v1,v2]) ∧ C1 ⇒ C2). Attribute names are resolved against the
// schema. Returned in order: optimized-support rule (or nil), then
// optimized-confidence rule (or nil). Thin wrapper over a throwaway
// Session.
func Mine(rel relation.Relation, numeric, objective string, objectiveValue bool,
	conditions []Condition, cfg Config) (supportRule, confidenceRule *Rule, err error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.Mine(numeric, objective, objectiveValue, conditions)
}

// legacyMine is the pre-session targeted pipeline (its own sampling
// pass + counting scan via attrRules), kept as the differential-testing
// reference for the session-backed Mine.
func legacyMine(rel relation.Relation, numeric, objective string, objectiveValue bool,
	conditions []Condition, cfg Config) (supportRule, confidenceRule *Rule, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	s := rel.Schema()
	numAttr := s.Index(numeric)
	if numAttr < 0 || s[numAttr].Kind != relation.Numeric {
		return nil, nil, fmt.Errorf("miner: %q is not a numeric attribute", numeric)
	}
	objAttr := s.Index(objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, nil, fmt.Errorf("miner: %q is not a Boolean attribute", objective)
	}
	var filter []bucketing.BoolCond
	for _, c := range conditions {
		a := s.Index(c.Attr)
		if a < 0 || s[a].Kind != relation.Boolean {
			return nil, nil, fmt.Errorf("miner: condition attribute %q is not Boolean", c.Attr)
		}
		filter = append(filter, bucketing.BoolCond{Attr: a, Want: c.Value})
	}
	rng := attrRNG(cfg.Seed, numAttr)
	rules, err := attrRules(rel, numAttr,
		[]bucketing.BoolCond{{Attr: objAttr, Want: objectiveValue}}, filter, cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	for i := range rules {
		switch rules[i].Kind {
		case OptimizedSupport:
			supportRule = &rules[i]
		case OptimizedConfidence:
			confidenceRule = &rules[i]
		}
	}
	return supportRule, confidenceRule, nil
}

// Condition is a named primitive Boolean condition for Mine; it is
// shared with the session query IR (plan.Condition).
type Condition = plan.Condition
