package miner

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"optrule/internal/relation"
)

func TestDescribe(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	for i := 1; i <= 4; i++ {
		rel.MustAppend([]float64{float64(i)}, []bool{i <= 3})
	}
	rel.MustAppend([]float64{math.NaN()}, []bool{false})
	sum, err := Describe(rel)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tuples != 5 || len(sum.Attributes) != 2 {
		t.Fatalf("summary shape wrong: %+v", sum)
	}
	x := sum.Attributes[0]
	if x.Name != "X" || x.Min != 1 || x.Max != 4 || x.Mean != 2.5 || x.NaNs != 1 {
		t.Errorf("numeric summary wrong: %+v", x)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4) // population std of 1..4
	if math.Abs(x.StdDev-wantStd) > 1e-9 {
		t.Errorf("std = %g, want %g", x.StdDev, wantStd)
	}
	b := sum.Attributes[1]
	if b.Name != "B" || b.YesCount != 3 {
		t.Errorf("boolean summary wrong: %+v", b)
	}
	var buf bytes.Buffer
	sum.Print(&buf)
	out := buf.String()
	for _, want := range []string{"5 tuples", "X", "numeric", "(1 NaN)", "B", "yes 3 (60.0%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeAllNaNColumn(t *testing.T) {
	rel := relation.MustNewMemoryRelation(relation.Schema{{Name: "X", Kind: relation.Numeric}})
	rel.MustAppend([]float64{math.NaN()}, nil)
	sum, err := Describe(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sum.Attributes[0].Mean) {
		t.Errorf("all-NaN column should have NaN mean, got %g", sum.Attributes[0].Mean)
	}
	var buf bytes.Buffer
	sum.Print(&buf) // must not panic
}
