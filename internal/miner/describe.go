package miner

import (
	"fmt"
	"io"
	"math"

	"optrule/internal/relation"
)

// AttributeSummary describes one attribute of a relation.
type AttributeSummary struct {
	Name string
	Kind relation.Kind
	// Numeric attributes:
	Min, Max, Mean, StdDev float64
	NaNs                   int
	// Boolean attributes:
	YesCount int
}

// DatasetSummary describes a relation, for the describe mode of the
// mining CLI and for quick data sanity checks before mining.
type DatasetSummary struct {
	Tuples     int
	Attributes []AttributeSummary
}

// Describe scans the relation once and summarizes every attribute.
func Describe(rel relation.Relation) (*DatasetSummary, error) {
	s := rel.Schema()
	sum := &DatasetSummary{Tuples: rel.NumTuples()}
	numIdx := s.NumericIndices()
	boolIdx := s.BooleanIndices()
	cols := relation.ColumnSet{Numeric: numIdx, Bool: boolIdx}

	type numAcc struct {
		min, max, sum, sumSq float64
		n, nans              int
	}
	numAccs := make([]numAcc, len(numIdx))
	for i := range numAccs {
		numAccs[i].min = math.Inf(1)
		numAccs[i].max = math.Inf(-1)
	}
	boolAccs := make([]int, len(boolIdx))

	err := rel.Scan(cols, func(b *relation.Batch) error {
		for k := range numIdx {
			acc := &numAccs[k]
			for _, v := range b.Numeric[k][:b.Len] {
				if math.IsNaN(v) {
					acc.nans++
					continue
				}
				if v < acc.min {
					acc.min = v
				}
				if v > acc.max {
					acc.max = v
				}
				acc.sum += v
				acc.sumSq += v * v
				acc.n++
			}
		}
		for k := range boolIdx {
			for _, v := range b.Bool[k][:b.Len] {
				if v {
					boolAccs[k]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, attr := range numIdx {
		acc := numAccs[k]
		a := AttributeSummary{Name: s[attr].Name, Kind: relation.Numeric, NaNs: acc.nans}
		if acc.n > 0 {
			a.Min, a.Max = acc.min, acc.max
			a.Mean = acc.sum / float64(acc.n)
			variance := acc.sumSq/float64(acc.n) - a.Mean*a.Mean
			if variance > 0 {
				a.StdDev = math.Sqrt(variance)
			}
		} else {
			a.Min, a.Max = math.NaN(), math.NaN()
			a.Mean, a.StdDev = math.NaN(), math.NaN()
		}
		sum.Attributes = append(sum.Attributes, a)
	}
	for k, attr := range boolIdx {
		sum.Attributes = append(sum.Attributes, AttributeSummary{
			Name: s[attr].Name, Kind: relation.Boolean, YesCount: boolAccs[k],
		})
	}
	return sum, nil
}

// Print writes the summary as a table.
func (d *DatasetSummary) Print(w io.Writer) {
	fmt.Fprintf(w, "%d tuples, %d attributes\n", d.Tuples, len(d.Attributes))
	for _, a := range d.Attributes {
		switch a.Kind {
		case relation.Numeric:
			fmt.Fprintf(w, "  %-20s numeric  min %.6g  max %.6g  mean %.6g  std %.6g",
				a.Name, a.Min, a.Max, a.Mean, a.StdDev)
			if a.NaNs > 0 {
				fmt.Fprintf(w, "  (%d NaN)", a.NaNs)
			}
			fmt.Fprintln(w)
		case relation.Boolean:
			pct := 0.0
			if d.Tuples > 0 {
				pct = 100 * float64(a.YesCount) / float64(d.Tuples)
			}
			fmt.Fprintf(w, "  %-20s boolean  yes %d (%.1f%%)\n", a.Name, a.YesCount, pct)
		}
	}
}
