package miner

import (
	"math/rand"
	"strings"
	"testing"

	"optrule/internal/relation"
)

// diagonalRelation plants a diagonal trend: the objective rate is high
// when A/1000 and B/200 are within 0.15 of each other — a region no
// axis-parallel rectangle captures well.
func diagonalRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(404))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 1000
		b := rng.Float64() * 200
		p := 0.05
		if diff := a/1000 - b/200; diff < 0.15 && diff > -0.15 {
			p = 0.8
		}
		rel.MustAppend([]float64{a, b}, []bool{rng.Float64() < p})
	}
	return rel
}

func TestMineXMonotoneFollowsDiagonal(t *testing.T) {
	rel := diagonalRelation(t, 120000)
	cfg := Config{MinConfidence: 0.5, Seed: 9}
	xm, err := MineXMonotone(rel, "A", "B", "C", true, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xm == nil {
		t.Fatal("no x-monotone region found")
	}
	if xm.Gain <= 0 {
		t.Fatalf("non-positive gain: %+v", xm)
	}
	if xm.Confidence < 0.5 {
		t.Errorf("region confidence %g below θ", xm.Confidence)
	}
	if len(xm.Bands) < 10 {
		t.Errorf("diagonal region should span many bands, got %d", len(xm.Bands))
	}
	// The bands must track the diagonal: band centers of A rise with B.
	first := xm.Bands[0]
	last := xm.Bands[len(xm.Bands)-1]
	firstMid := (first.ALo + first.AHi) / 2
	lastMid := (last.ALo + last.AHi) / 2
	if lastMid <= firstMid {
		t.Errorf("region does not follow the rising diagonal: first A-mid %g, last %g", firstMid, lastMid)
	}

	// A rectangle on the same grid captures materially less gain.
	rect, err := Mine2D(rel, "A", "B", "C", true, OptimizedGain, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rect == nil {
		t.Fatal("no rectangle for comparison")
	}
	if xm.Gain < rect.Gain {
		t.Errorf("x-monotone gain %g below rectangle gain %g", xm.Gain, rect.Gain)
	}
	if xm.Gain < 1.3*rect.Gain {
		t.Errorf("on diagonal data the x-monotone region should clearly beat the rectangle: %g vs %g",
			xm.Gain, rect.Gain)
	}
	if !strings.Contains(xm.Describe(), "x-monotone region") {
		t.Errorf("Describe malformed: %s", xm.Describe())
	}
}

func TestMineXMonotoneNoSignal(t *testing.T) {
	// Uniform noise below θ everywhere: no positive-gain region.
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		rel.MustAppend([]float64{rng.Float64(), rng.Float64()}, []bool{rng.Float64() < 0.05})
	}
	xm, err := MineXMonotone(rel, "A", "B", "C", true, 10, Config{MinConfidence: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if xm != nil {
		t.Errorf("found a region in pure noise at θ=0.9: %+v", xm)
	}
}

func TestMineRectilinearConvexOnBlob(t *testing.T) {
	// A circular blob: high objective rate inside a disk — the natural
	// habitat of rectilinear-convex regions.
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "A", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Numeric},
		{Name: "C", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(606))
	n := 100000
	rel.Grow(n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		p := 0.05
		if a*a+b*b < 0.35 {
			p = 0.75
		}
		rel.MustAppend([]float64{a, b}, []bool{rng.Float64() < p})
	}
	cfg := Config{MinConfidence: 0.5, Seed: 4}
	rc, err := MineRectilinearConvex(rel, "A", "B", "C", true, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rc == nil {
		t.Fatal("no rectilinear-convex region on a planted disk")
	}
	if rc.Class != RectilinearConvexClass {
		t.Errorf("class = %v", rc.Class)
	}
	if rc.Confidence < 0.5 || rc.Gain <= 0 {
		t.Errorf("bad region stats: %+v", rc)
	}
	// The disk covers ~27% of the square at 0.75 confidence; the region
	// should capture a sizeable share of it.
	if rc.Support < 0.10 {
		t.Errorf("region support %g; expected to cover much of the disk", rc.Support)
	}
	if !strings.Contains(rc.String(), "rectilinear-convex") {
		t.Errorf("String() = %s", rc)
	}
	// Class hierarchy on the same data/grid: gains ordered.
	xm, err := MineXMonotone(rel, "A", "B", "C", true, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rect, err := Mine2D(rel, "A", "B", "C", true, OptimizedGain, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xm == nil || rect == nil {
		t.Fatal("missing comparison rules")
	}
	if rc.Gain < rect.Gain-1e-9 || xm.Gain < rc.Gain-1e-9 {
		t.Errorf("gain hierarchy violated: rect %g, rectconvex %g, xmonotone %g",
			rect.Gain, rc.Gain, xm.Gain)
	}
}

func TestMineXMonotoneValidation(t *testing.T) {
	rel := diagonalRelation(t, 100)
	if _, err := MineXMonotone(rel, "Nope", "B", "C", true, 8, Config{}); err == nil {
		t.Errorf("unknown attribute accepted")
	}
	if _, err := MineXMonotone(rel, "A", "A", "C", true, 8, Config{}); err == nil {
		t.Errorf("identical attributes accepted")
	}
	if _, err := MineXMonotone(rel, "A", "B", "A", true, 8, Config{}); err == nil {
		t.Errorf("numeric objective accepted")
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := MineXMonotone(empty, "A", "B", "C", true, 8, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
}
