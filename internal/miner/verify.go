package miner

import (
	"fmt"

	"optrule/internal/relation"
)

// Verification rescans the relation to recompute a mined rule's
// statistics exactly. Mining is bucket-approximate (Section 3.4 bounds
// the error); verification is exact, so production deployments can
// report audited numbers next to each discovered rule.

// Verification holds the exact statistics of a rule's range.
type Verification struct {
	// Count is the exact number of (condition-satisfying) tuples with
	// the numeric attribute in [Low, High].
	Count int
	// Support is Count over the condition-satisfying tuple total.
	Support float64
	// Confidence is the exact objective rate within the range.
	Confidence float64
	// Baseline is the exact objective rate over all
	// condition-satisfying tuples.
	Baseline float64
	// Total is the number of condition-satisfying tuples scanned.
	Total int
}

// Verify recomputes the exact support and confidence of rule over rel
// with one sequential scan. The rule's Condition conjuncts are honoured
// when conds carries the same conditions used at mining time (Verify
// cannot parse them back out of the rule's display string).
func Verify(rel relation.Relation, rule Rule, conds []Condition) (Verification, error) {
	s := rel.Schema()
	numAttr := s.Index(rule.Numeric)
	if numAttr < 0 || s[numAttr].Kind != relation.Numeric {
		return Verification{}, fmt.Errorf("miner: rule attribute %q not in schema", rule.Numeric)
	}
	objAttr := s.Index(rule.Objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return Verification{}, fmt.Errorf("miner: rule objective %q not in schema", rule.Objective)
	}
	cols := relation.ColumnSet{Numeric: []int{numAttr}, Bool: []int{objAttr}}
	filterAt := make([]int, len(conds))
	filterWant := make([]bool, len(conds))
	for i, c := range conds {
		a := s.Index(c.Attr)
		if a < 0 || s[a].Kind != relation.Boolean {
			return Verification{}, fmt.Errorf("miner: condition attribute %q not Boolean", c.Attr)
		}
		filterAt[i] = len(cols.Bool)
		cols.Bool = append(cols.Bool, a)
		filterWant[i] = c.Value
	}

	var v Verification
	var inHits, allHits int
	err := rel.Scan(cols, func(b *relation.Batch) error {
		for row := 0; row < b.Len; row++ {
			pass := true
			for i := range filterAt {
				if b.Bool[filterAt[i]][row] != filterWant[i] {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			v.Total++
			hit := b.Bool[0][row] == rule.ObjectiveValue
			if hit {
				allHits++
			}
			x := b.Numeric[0][row]
			if x >= rule.Low && x <= rule.High {
				v.Count++
				if hit {
					inHits++
				}
			}
		}
		return nil
	})
	if err != nil {
		return Verification{}, err
	}
	if v.Total == 0 {
		return Verification{}, fmt.Errorf("miner: no tuples satisfy the rule's conditions")
	}
	v.Support = float64(v.Count) / float64(v.Total)
	v.Baseline = float64(allHits) / float64(v.Total)
	if v.Count > 0 {
		v.Confidence = float64(inHits) / float64(v.Count)
	}
	return v, nil
}
