package miner

import (
	"reflect"
	"sync"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// The append differential suite: appending rows and folding them into
// the cached statistics must answer every query BIT-IDENTICAL to a
// cold rebuild over the grown relation — across storage backends,
// query shapes, and repeated small appends. Within the bucket-error
// budget the fold reuses the warm session's boundaries, so the cold
// control is pinned to the same boundaries (CopyBoundsFrom); the
// over-budget path re-samples exactly like a cold session and needs no
// pinning.

// appendDiffQueries is the mixed workload: all-attribute 1-D rules, a
// targeted query, a filtered query, a 2-D region query, top-k, and a
// conjunctive query.
func appendDiffQueries() []Query {
	return []Query{
		{Op: OpRules},
		{Op: OpRules, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true},
		{Op: OpRules, Numeric: "Age", Objective: "Mortgage", ObjectiveValue: true,
			Conditions: []Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: OpRules2D, Numeric: "Balance", NumericB: "Age", Objective: "CardLoan",
			ObjectiveValue: true, GridSide: 32, Regions: []RegionClass{XMonotoneClass}},
		{Op: OpTopK, Numeric: "Balance", Objective: "CardLoan", ObjectiveValue: true, K: 3},
		{Op: OpConjunctive, Numeric: "Age",
			Objectives: []Condition{{Attr: "CardLoan", Value: true}},
			Conditions: []Condition{{Attr: "Mortgage", Value: true}}},
	}
}

// sliceRows extracts rows [start, end) of a materialized relation as
// per-row column-ordered slices, the Session.Append input shape.
func sliceRows(t *testing.T, full *relation.MemoryRelation, start, end int) ([][]float64, [][]bool) {
	t.Helper()
	schema := full.Schema()
	var numCols [][]float64
	var boolCols [][]bool
	for i, attr := range schema {
		if attr.Kind == relation.Numeric {
			col, err := full.NumericColumn(i)
			if err != nil {
				t.Fatal(err)
			}
			numCols = append(numCols, col)
		} else {
			col, err := full.BoolColumn(i)
			if err != nil {
				t.Fatal(err)
			}
			boolCols = append(boolCols, col)
		}
	}
	nums := make([][]float64, 0, end-start)
	bools := make([][]bool, 0, end-start)
	for row := start; row < end; row++ {
		nr := make([]float64, len(numCols))
		for c, col := range numCols {
			nr[c] = col[row]
		}
		br := make([]bool, len(boolCols))
		for c, col := range boolCols {
			br[c] = col[row]
		}
		nums = append(nums, nr)
		bools = append(bools, br)
	}
	return nums, bools
}

// tailRelation wraps rows [start, end) of full as a standalone memory
// relation, the AppendToSharded input shape.
func tailRelation(t *testing.T, full *relation.MemoryRelation, start, end int) *relation.MemoryRelation {
	t.Helper()
	tail := relation.MustNewMemoryRelation(full.Schema())
	nums, bools := sliceRows(t, full, start, end)
	for i := range nums {
		tail.MustAppend(nums[i], bools[i])
	}
	return tail
}

// requireAnswersEqual compares two answer sets payload-for-payload.
func requireAnswersEqual(t *testing.T, name string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("%s query %d: errs %v / %v", name, i, got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Rules, want[i].Rules) ||
			!reflect.DeepEqual(got[i].Rules2D, want[i].Rules2D) ||
			!reflect.DeepEqual(got[i].Regions, want[i].Regions) ||
			!reflect.DeepEqual(got[i].Range, want[i].Range) ||
			got[i].Tuples != want[i].Tuples {
			t.Errorf("%s query %d (%v): answers diverge\nincremental: %+v\ncold:        %+v",
				name, i, got[i].Query.Op, got[i], want[i])
		}
	}
}

// TestAppendThenQueryMatchesColdRebuild is the tentpole differential:
// warm a session on the base rows, append a tail in several small
// batches (each folded incrementally), and pin the re-queried answers
// bit-identical to a cold session over the grown data using the same
// boundaries — for every storage backend, including mixed-format
// shards, and with the re-query reading ZERO bytes from disk-backed
// storage.
func TestAppendThenQueryMatchesColdRebuild(t *testing.T) {
	const base, delta, rounds = 4000, 40, 3
	total := base + delta*rounds
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The generator's single sequential RNG gives the prefix property:
	// the first base rows of the total-row materialization ARE the base
	// materialization, so tails sliced from full continue it exactly.
	full, err := datagen.Materialize(bank, total, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 150, Seed: 17, MinSupport: 0.05, MinConfidence: 0.55}
	queries := appendDiffQueries()

	type backend struct {
		name         string
		baseFormat   int // sharded backends: format of the seed shards
		appendFormat int // sharded backends: format of appended shards
	}
	backends := []backend{
		{name: "memory"},
		{name: "sharded-v2", baseFormat: relation.DiskFormatV2, appendFormat: relation.DiskFormatV2},
		{name: "sharded-v3", baseFormat: relation.DiskFormatV3, appendFormat: relation.DiskFormatV3},
		{name: "sharded-mixed", baseFormat: relation.DiskFormatV3, appendFormat: relation.DiskFormatV2},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			var rel relation.Relation
			var manifest string
			if b.name == "memory" {
				mem, err := datagen.Materialize(bank, base, 23)
				if err != nil {
					t.Fatal(err)
				}
				rel = mem
			} else {
				manifest = t.TempDir() + "/bank.oprs"
				if err := datagen.WriteSharded(manifest, bank, base, 23, 2, b.baseFormat); err != nil {
					t.Fatal(err)
				}
				sr, err := relation.OpenSharded(manifest)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sr.Close() })
				rel = sr
			}
			sess, err := NewSession(rel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := sess.ExecuteBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range warm {
				if a.Err != nil {
					t.Fatalf("warm query %d: %v", i, a.Err)
				}
			}

			for r := 0; r < rounds; r++ {
				start, end := base+r*delta, base+(r+1)*delta
				var ds DeltaStats
				if b.name == "memory" {
					nums, bools := sliceRows(t, full, start, end)
					ds, err = sess.Append(nums, bools)
				} else {
					tail := tailRelation(t, full, start, end)
					if _, err := relation.AppendToSharded(manifest, tail,
						relation.AppendOptions{Format: b.appendFormat}); err != nil {
						t.Fatal(err)
					}
					ds, err = sess.RefreshFromStorage()
				}
				if err != nil {
					t.Fatalf("append round %d: %v", r, err)
				}
				if ds.Resamples != 0 {
					t.Fatalf("append round %d re-sampled within budget", r)
				}
				if ds.EntriesFolded == 0 {
					t.Fatalf("append round %d folded nothing", r)
				}
				if ds.RowsScanned != int64(delta) {
					t.Fatalf("append round %d scanned %d rows, want %d", r, ds.RowsScanned, delta)
				}
			}

			// Post-append re-query: fully covered, zero bytes re-read.
			if br, ok := rel.(interface {
				BytesRead() int64
				ResetBytesRead()
			}); ok {
				br.ResetBytesRead()
				defer func() {
					if n := br.BytesRead(); n != 0 {
						t.Errorf("post-append re-query read %d bytes, want 0 (boundaries and counts all folded)", n)
					}
				}()
			}
			incr, err := sess.ExecuteBatch(queries)
			if err != nil {
				t.Fatal(err)
			}

			// Cold control over the grown data, pinned to the warm
			// session's boundaries.
			var coldRel relation.Relation
			if b.name == "memory" {
				coldRel = full
			} else {
				sr, err := relation.OpenSharded(manifest)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sr.Close() })
				coldRel = sr
			}
			if coldRel.NumTuples() != total {
				t.Fatalf("grown relation holds %d tuples, want %d", coldRel.NumTuples(), total)
			}
			cold, err := NewSession(coldRel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cold.StatsCache().CopyBoundsFrom(sess.StatsCache())
			want, err := cold.ExecuteBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			requireAnswersEqual(t, b.name, incr, want)

			cs := sess.CacheStats()
			if cs.DeltaTailScans != rounds {
				t.Errorf("cache counted %d tail scans, want %d", cs.DeltaTailScans, rounds)
			}
			if cs.DeltaRowsScanned != int64(delta*rounds) {
				t.Errorf("cache counted %d delta rows, want %d", cs.DeltaRowsScanned, delta*rounds)
			}
		})
	}
}

// TestAppendOverBudgetMatchesPlainColdSession pins the re-sample path:
// a huge append blows the bucket-error budget, the refresh re-samples
// with the cold RNG streams and drops the dependent statistics, and
// the re-queried answers equal a PLAIN cold session's — no boundary
// pinning, because the re-sampled boundaries already are the cold
// boundaries.
func TestAppendOverBudgetMatchesPlainColdSession(t *testing.T) {
	const base = 2000
	total := base * 2
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := datagen.Materialize(bank, total, 23)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, base, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 150, Seed: 17, MinSupport: 0.05, MinConfidence: 0.55}
	queries := appendDiffQueries()
	sess, err := NewSession(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteBatch(queries); err != nil {
		t.Fatal(err)
	}
	nums, bools := sliceRows(t, full, base, total)
	ds, err := sess.Append(nums, bools)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Resamples == 0 {
		t.Fatalf("100%% growth did not re-sample")
	}
	if ds.EntriesFolded != 0 {
		t.Fatalf("%d entries folded across a re-sample, want 0", ds.EntriesFolded)
	}
	incr, err := sess.ExecuteBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.ExecuteBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	requireAnswersEqual(t, "over-budget", incr, want)
}

// TestAverageAfterAppendRecountsAndMatches pins the float-sum
// discipline: the fold strips target sums (their accumulation order is
// observable in the last bits), so the next average query recounts
// them serially over the full relation — and lands bit-identical to a
// cold session over the same boundaries.
func TestAverageAfterAppendRecountsAndMatches(t *testing.T) {
	const base, delta = 3000, 60
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := datagen.Materialize(bank, base+delta, 23)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, base, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 150, Seed: 17}
	avg := []Query{{Op: OpAverage, Numeric: "Balance", Target: "Age", MinSupport: 0.1}}
	sess, err := NewSession(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecuteBatch(avg); err != nil {
		t.Fatal(err)
	}
	nums, bools := sliceRows(t, full, base, base+delta)
	if _, err := sess.Append(nums, bools); err != nil {
		t.Fatal(err)
	}
	incr, err := sess.ExecuteBatch(avg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold.StatsCache().CopyBoundsFrom(sess.StatsCache())
	want, err := cold.ExecuteBatch(avg)
	if err != nil {
		t.Fatal(err)
	}
	requireAnswersEqual(t, "average", incr, want)
}

// TestConcurrentBatchesAndAppends drives query batches against
// concurrent appends. The session's refresh lock orders them: every
// batch sees a consistent row count, no stale partial ever lands in
// the cache (generation tags), and the final state still answers
// bit-identical to a cold rebuild. Run under -race in CI.
func TestConcurrentBatchesAndAppends(t *testing.T) {
	const base, delta, rounds = 2000, 25, 8
	total := base + delta*rounds
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := datagen.Materialize(bank, total, 23)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, base, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Buckets: 150, Seed: 17, MinSupport: 0.05, MinConfidence: 0.55}
	queries := appendDiffQueries()
	sess, err := NewSession(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				answers, err := sess.ExecuteBatch(queries)
				if err != nil {
					errc <- err
					return
				}
				for _, a := range answers {
					if a.Err != nil {
						errc <- a.Err
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			start, end := base+r*delta, base+(r+1)*delta
			nums, bools := sliceRows(t, full, start, end)
			if _, err := sess.Append(nums, bools); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	incr, err := sess.ExecuteBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold.StatsCache().CopyBoundsFrom(sess.StatsCache())
	want, err := cold.ExecuteBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	requireAnswersEqual(t, "concurrent", incr, want)
}

// TestSessionRefreshScansTailOnly pins the session-level O(Δ) claim
// with an instrumented relation: after a warm batch, growing the
// relation and refreshing reads rows at or above the old count ONLY,
// and the subsequent re-query reads nothing at all.
func TestSessionRefreshScansTailOnly(t *testing.T) {
	const base, delta = 3000, 50
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := datagen.Materialize(bank, base+delta, 23)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, base, 23)
	if err != nil {
		t.Fatal(err)
	}
	counting := &relation.RangeCountingRelation{R: mem}
	cfg := Config{Buckets: 150, Seed: 17, MinSupport: 0.05, MinConfidence: 0.55}
	sess, err := NewSession(counting, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := appendDiffQueries()
	if _, err := sess.ExecuteBatch(queries); err != nil {
		t.Fatal(err)
	}
	warmScans := len(counting.Ranges)

	// Grow the relation directly (outside the session) and refresh.
	nums, bools := sliceRows(t, full, base, base+delta)
	for i := range nums {
		mem.MustAppend(nums[i], bools[i])
	}
	ds, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if ds.EntriesFolded == 0 {
		t.Fatalf("refresh folded nothing")
	}
	for _, r := range counting.Ranges[warmScans:] {
		if r[0] < base && r[0] != r[1] {
			t.Errorf("delta refresh scanned [%d,%d), below the old count %d: not O(Δ)", r[0], r[1], base)
		}
	}
	refreshScans := len(counting.Ranges)
	if refreshScans == warmScans {
		t.Fatalf("refresh issued no scans")
	}
	if _, err := sess.ExecuteBatch(queries); err != nil {
		t.Fatal(err)
	}
	if len(counting.Ranges) != refreshScans {
		t.Errorf("post-refresh re-query issued %d new scans, want 0", len(counting.Ranges)-refreshScans)
	}
}
