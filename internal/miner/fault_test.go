package miner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"optrule/internal/relation"
)

// faultyRelation wraps a relation and fails the Nth scan — fault
// injection for the orchestration layer: errors from any of the passes
// (sampling, counting) must surface, never panic or deadlock. The scan
// counter is atomic because MineAll's workers scan concurrently.
type faultyRelation struct {
	relation.Relation
	failOn int64 // scan number to fail (1-based)
	scans  atomic.Int64
}

func (f *faultyRelation) Scan(cols relation.ColumnSet, fn func(*relation.Batch) error) error {
	if n := f.scans.Add(1); n == f.failOn {
		return fmt.Errorf("injected fault on scan %d", n)
	}
	return f.Relation.Scan(cols, fn)
}

func TestMineAllSurfacesScanErrors(t *testing.T) {
	base, _ := bankRelation(t, 2000)
	// The fused pipeline performs exactly two scans: the sampling scan
	// and the counting scan. Fail each.
	for failOn := 1; failOn <= 2; failOn++ {
		rel := &faultyRelation{Relation: base, failOn: int64(failOn)}
		_, err := MineAll(rel, Config{Buckets: 50, Seed: 1, Workers: 1})
		if err == nil {
			t.Fatalf("failOn=%d: injected fault swallowed", failOn)
		}
		if !strings.Contains(err.Error(), "injected fault") {
			t.Fatalf("failOn=%d: unexpected error: %v", failOn, err)
		}
	}
	// The legacy per-attribute path scans once per attribute per phase;
	// fail deeper positions there.
	for failOn := 1; failOn <= 4; failOn++ {
		rel := &faultyRelation{Relation: base, failOn: int64(failOn)}
		_, err := mineAllPerAttribute(rel, Config{Buckets: 50, Seed: 1, Workers: 1})
		if err == nil {
			t.Fatalf("legacy failOn=%d: injected fault swallowed", failOn)
		}
		if !strings.Contains(err.Error(), "injected fault") {
			t.Fatalf("legacy failOn=%d: unexpected error: %v", failOn, err)
		}
	}
}

func TestMineAllSurfacesErrorsUnderConcurrency(t *testing.T) {
	base, _ := bankRelation(t, 2000)
	// Fused path: fail each of its two scans with workers racing in
	// phase 3 — the error must still surface and the call must return
	// (no goroutine leak / deadlock).
	for failOn := 1; failOn <= 2; failOn++ {
		rel := &faultyRelation{Relation: base, failOn: int64(failOn)}
		if _, err := MineAll(rel, Config{Buckets: 50, Seed: 1, Workers: 8}); err == nil {
			t.Fatal("injected fault swallowed with concurrent workers")
		}
	}
	// Legacy path: workers scan concurrently, so a mid-stream fault
	// races against healthy scans.
	rel := &faultyRelation{Relation: base, failOn: 3}
	if _, err := mineAllPerAttribute(rel, Config{Buckets: 50, Seed: 1, Workers: 8}); err == nil {
		t.Fatal("injected fault swallowed with concurrent workers (legacy)")
	}
}

func TestTargetedMineSurfacesScanErrors(t *testing.T) {
	base, _ := bankRelation(t, 1000)
	rel := &faultyRelation{Relation: base, failOn: 2}
	if _, _, err := Mine(rel, "Balance", "CardLoan", true, nil, Config{Buckets: 20, Seed: 1}); err == nil {
		t.Fatal("injected fault swallowed")
	}
	rel2 := &faultyRelation{Relation: base, failOn: 1}
	if _, err := MaxAverageRange(rel2, "Balance", "Age", 0.1, Config{Buckets: 20}); err == nil {
		t.Fatal("injected fault swallowed in average mode")
	}
	rel3 := &faultyRelation{Relation: base, failOn: 1}
	if _, err := BuildProfile(rel3, "Balance", "CardLoan", true, 10, Config{}); err == nil {
		t.Fatal("injected fault swallowed in profile")
	}
	rel4 := &faultyRelation{Relation: base, failOn: 2}
	if _, err := Mine2D(rel4, "Balance", "Age", "CardLoan", true, OptimizedSupport, 8, Config{}); err == nil {
		t.Fatal("injected fault swallowed in 2D mining")
	}
	rel5 := &faultyRelation{Relation: base, failOn: 1}
	if _, err := Describe(rel5); err == nil {
		t.Fatal("injected fault swallowed in describe")
	}
	rel6 := &faultyRelation{Relation: base, failOn: 1}
	if _, err := Verify(rel6, Rule{Numeric: "Balance", Objective: "CardLoan"}, nil); err == nil {
		t.Fatal("injected fault swallowed in verify")
	}
}
