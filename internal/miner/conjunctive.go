package miner

import (
	"fmt"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/relation"
)

// MineConjunctive mines the fully general rule form of Section 4.3:
//
//	(A ∈ [v1, v2]) ∧ C1 ⇒ C2
//
// where BOTH the presumptive condition C1 (conditions) and the
// objective condition C2 (objectives) are conjunctions of primitive
// Boolean conditions. Per the paper's recipe, u_i counts tuples in
// bucket i meeting C1 and v_i counts tuples meeting C1 ∧ C2; this is
// realized with two counting scans sharing one set of boundaries.
// Returns the optimized-support and optimized-confidence rules (either
// may be nil).
func MineConjunctive(rel relation.Relation, numeric string, objectives []Condition,
	conditions []Condition, cfg Config) (supportRule, confidenceRule *Rule, err error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.MineConjunctive(numeric, objectives, conditions)
}

// legacyMineConjunctive is the pre-session pipeline (two counting
// scans sharing one boundary set), kept as the differential-testing
// reference for the session-backed MineConjunctive.
func legacyMineConjunctive(rel relation.Relation, numeric string, objectives []Condition,
	conditions []Condition, cfg Config) (supportRule, confidenceRule *Rule, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if len(objectives) == 0 {
		return nil, nil, fmt.Errorf("miner: at least one objective condition required")
	}
	s := rel.Schema()
	numAttr := s.Index(numeric)
	if numAttr < 0 || s[numAttr].Kind != relation.Numeric {
		return nil, nil, fmt.Errorf("miner: %q is not a numeric attribute", numeric)
	}
	resolve := func(conds []Condition) ([]bucketing.BoolCond, error) {
		var out []bucketing.BoolCond
		for _, c := range conds {
			a := s.Index(c.Attr)
			if a < 0 || s[a].Kind != relation.Boolean {
				return nil, fmt.Errorf("miner: condition attribute %q is not Boolean", c.Attr)
			}
			out = append(out, bucketing.BoolCond{Attr: a, Want: c.Value})
		}
		return out, nil
	}
	c1, err := resolve(conditions)
	if err != nil {
		return nil, nil, err
	}
	c2, err := resolve(objectives)
	if err != nil {
		return nil, nil, err
	}
	if rel.NumTuples() == 0 {
		return nil, nil, fmt.Errorf("miner: empty relation")
	}

	rng := attrRNG(cfg.Seed, numAttr)
	bounds, err := attrBoundaries(rel, numAttr, cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	// Scan 1: u_i over C1.
	uCounts, err := countScan(rel, numAttr, bounds, bucketing.Options{
		Filter:        c1,
		TrackExtremes: true,
	}, cfg)
	if err != nil {
		return nil, nil, err
	}
	if uCounts.N == 0 {
		return nil, nil, nil // C1 excludes everything
	}
	// Scan 2: v_i over C1 ∧ C2.
	vCounts, err := countScan(rel, numAttr, bounds, bucketing.Options{
		Filter: append(append([]bucketing.BoolCond{}, c1...), c2...),
	}, cfg)
	if err != nil {
		return nil, nil, err
	}

	// Compact on u (v is bounded by u bucketwise).
	compact, keep := uCounts.Compact()
	v := make([]float64, compact.M)
	hits := 0
	for j, i := range keep {
		v[j] = float64(vCounts.U[i])
		hits += vCounts.U[i]
	}
	cond := condString(s, c1)
	objNames := condString(s, c2)
	base := Rule{
		Numeric:   s[numAttr].Name,
		Objective: objNames,
		// ObjectiveValue is absorbed into the rendered conjunction.
		ObjectiveValue: true,
		Condition:      cond,
		Baseline:       float64(hits) / float64(compact.N),
		Buckets:        compact.M,
	}
	if p, ok, err := core.OptimalSupportPair(compact.U, v, cfg.MinConfidence); err != nil {
		return nil, nil, err
	} else if ok {
		r := base
		r.Kind = OptimizedSupport
		fillPair(&r, p, compact)
		supportRule = &r
	}
	if p, ok, err := core.OptimalSlopePair(compact.U, v, cfg.MinSupport*float64(compact.N)); err != nil {
		return nil, nil, err
	} else if ok {
		r := base
		r.Kind = OptimizedConfidence
		fillPair(&r, p, compact)
		confidenceRule = &r
	}
	return supportRule, confidenceRule, nil
}
