package miner

import (
	"math"
	"math/rand"
	"testing"

	"optrule/internal/relation"
)

// ageRelation has an integer Age domain (18…90) with a planted
// high-confidence band [30, 45].
func ageRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "Age", Kind: relation.Numeric},
		{Name: "Mortgage", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(13))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		age := float64(18 + rng.Intn(73))
		p := 0.08
		if age >= 30 && age <= 45 {
			p = 0.6
		}
		rel.MustAppend([]float64{age}, []bool{rng.Float64() < p})
	}
	return rel
}

func TestExactDomainModeUsesFinestBuckets(t *testing.T) {
	rel := ageRelation(t, 50000)
	cfg := Config{
		MinSupport:       0.05,
		MinConfidence:    0.5,
		ExactDomainLimit: 100, // Age has 73 distinct values
		Seed:             1,
	}
	sup, conf, err := Mine(rel, "Age", "Mortgage", true, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil || conf == nil {
		t.Fatal("rules missing in exact mode")
	}
	// With finest buckets the rule endpoints are exact integer ages.
	for _, r := range []*Rule{sup, conf} {
		if r.Low != math.Trunc(r.Low) || r.High != math.Trunc(r.High) {
			t.Errorf("exact-mode endpoints not on domain values: [%g, %g]", r.Low, r.High)
		}
		if r.Buckets != 73 {
			t.Errorf("exact mode should use 73 finest buckets, got %d", r.Buckets)
		}
	}
	// The optimized-support rule at θ=0.5 must be exactly the planted
	// band [30, 45]: inside confidence 0.6 >= 0.5, and any adjacent age
	// at 0.08 would dilute below... actually dilution tolerance is
	// (0.6-0.5)/(0.5-0.08) ≈ 0.24 of the band mass, so allow slack of a
	// few years; the core band must be covered.
	if sup.Low > 30 || sup.High < 45 {
		t.Errorf("support rule [%g, %g] fails to cover the planted band [30, 45]", sup.Low, sup.High)
	}
	if sup.Low < 25 || sup.High > 50 {
		t.Errorf("support rule [%g, %g] extends too far beyond [30, 45]", sup.Low, sup.High)
	}
}

func TestExactDomainModeMatchesBruteForce(t *testing.T) {
	// On a small integer domain, compare the exact-mode optimized
	// support rule against brute force over all value ranges.
	rel := ageRelation(t, 20000)
	ages, _ := rel.NumericColumn(0)
	hits, _ := rel.BoolColumn(1)
	theta := 0.5

	// Brute force over integer ranges [a, b].
	const lo, hi = 18, 90
	var cu, cv [hi + 1]int
	for i, a := range ages {
		cu[int(a)]++
		if hits[i] {
			cv[int(a)]++
		}
	}
	bestCount := -1
	for a := lo; a <= hi; a++ {
		su, sv := 0, 0
		for b := a; b <= hi; b++ {
			su += cu[b]
			sv += cv[b]
			if su > 0 && float64(sv) >= theta*float64(su) && su > bestCount {
				bestCount = su
			}
		}
	}

	sup, _, err := Mine(rel, "Age", "Mortgage", true, nil, Config{
		MinConfidence: theta, ExactDomainLimit: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no exact-mode rule")
	}
	if sup.Count != bestCount {
		t.Errorf("exact-mode support %d != brute force %d", sup.Count, bestCount)
	}
}

func TestExactDomainFallsBackOnLargeDomains(t *testing.T) {
	// A continuous attribute exceeds any reasonable distinct-value cap;
	// mining must silently fall back to sampled buckets.
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		rel.MustAppend([]float64{rng.Float64()}, []bool{rng.Intn(2) == 0})
	}
	sup, _, err := Mine(rel, "X", "B", true, nil, Config{
		ExactDomainLimit: 50, Buckets: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("fallback mining produced no rule")
	}
	if sup.Buckets > 100 {
		t.Errorf("fallback should use <= 100 sampled buckets, got %d", sup.Buckets)
	}
}
