package miner

import (
	"path/filepath"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// benchTuples sizes the bank workload (3 numeric × 3 Boolean). 1M
// tuples keeps the scan cost — the term the fused engine collapses —
// dominant over the fixed per-attribute CPU (sample sorts, hulls), as
// in the paper's out-of-core regime.
const benchTuples = 1000000

// benchMemRelation builds the bank workload in memory; benchDiskRelation
// builds it on disk. Split so each benchmark pays only for the relation
// it measures (the setup reruns for every b.N probe).
func benchMemRelation(b *testing.B) *relation.MemoryRelation {
	b.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		b.Fatal(err)
	}
	mem, err := datagen.Materialize(bank, benchTuples, 1)
	if err != nil {
		b.Fatal(err)
	}
	return mem
}

func benchDiskRelation(b *testing.B) *relation.DiskRelation {
	b.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bank.opr")
	if err := datagen.WriteDisk(path, bank, benchTuples, 1); err != nil {
		b.Fatal(err)
	}
	disk, err := relation.OpenDisk(path)
	if err != nil {
		b.Fatal(err)
	}
	return disk
}

func BenchmarkMineAllFusedMemory(b *testing.B) {
	mem := benchMemRelation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll(mem, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineAllLegacyMemory(b *testing.B) {
	mem := benchMemRelation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mineAllPerAttribute(mem, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineAllFusedDisk(b *testing.B) {
	disk := benchDiskRelation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineAll(disk, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineAllLegacyDisk(b *testing.B) {
	disk := benchDiskRelation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mineAllPerAttribute(disk, Config{Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
