package miner

import (
	"context"
	"errors"
	"testing"
	"time"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// faultMatrixBackends opens the same bank tuple stream on every
// storage backend: memory, v1/v2/v3 single files, and a sharded
// relation with concurrent sub-scans.
func faultMatrixBackends(t *testing.T, n int) map[string]relation.Relation {
	t.Helper()
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardedOf(t, bank, n, 42, 3)
	sharded.SetConcurrentScans(2)
	return map[string]relation.Relation{
		"memory":  datagen.MustMaterialize(bank, n, 42),
		"v1":      diskOfFormat(t, bank, n, 42, relation.DiskFormatV1),
		"v2":      diskOfFormat(t, bank, n, 42, relation.DiskFormatV2),
		"v3":      diskOfFormat(t, bank, n, 42, relation.DiskFormatV3),
		"sharded": sharded,
	}
}

// TestFaultMatrixRulesIdentical is the differential fault matrix: for
// every backend × worker count × failure mode, the mined rules must be
// bit-identical to the healthy zero-worker baseline — faults may cost
// retries, re-routes, timeouts, and fallbacks, but never a different
// answer. Worker-layer faults are injected by wrapping each pool
// worker's relation in the deterministic fault harness.
func TestFaultMatrixRulesIdentical(t *testing.T) {
	backends := faultMatrixBackends(t, 6000)
	base := Config{Buckets: 60, Seed: 7, Workers: 2}

	baseline, err := MineAll(backends["memory"], base)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Rules) == 0 {
		t.Fatal("degenerate matrix: baseline mined no rules")
	}

	modes := []struct {
		name    string
		cfg     relation.FaultConfig // per-worker fault plan (Seed is offset per worker)
		scatter func(sc *ScatterConfig)
	}{
		{name: "healthy"},
		{name: "midscan-fail", cfg: relation.FaultConfig{FailProb: 0.4, FailAfterRows: 1200}},
		{name: "open-fail", cfg: relation.FaultConfig{FailProb: 0.4}},
		{name: "short-batches", cfg: relation.FaultConfig{ShortBatches: 97}},
		{name: "stall-timeout",
			cfg: relation.FaultConfig{FailEvery: 1, StallOnly: true, Stall: 80 * time.Millisecond},
			scatter: func(sc *ScatterConfig) {
				sc.TaskTimeout = 15 * time.Millisecond
				sc.MaxAttempts = 2
			}},
	}

	for name, rel := range backends {
		for _, workers := range []int{0, 2, 4} {
			for _, mode := range modes {
				if workers == 0 && mode.name != "healthy" {
					continue // worker-layer faults need a worker pool
				}
				cfg := base
				cfg.Scatter = ScatterConfig{Workers: workers, Backoff: time.Microsecond}
				if workers > 0 && mode.name != "healthy" {
					mcfg := mode.cfg
					cfg.Scatter.NewWorker = func(i int, r relation.Relation) Worker {
						wcfg := mcfg
						wcfg.Seed = int64(1000 + i)
						return NewLocalWorker(relation.NewFaultRelation(r, wcfg), false)
					}
				}
				if mode.scatter != nil {
					mode.scatter(&cfg.Scatter)
				}
				got, err := MineAll(rel, cfg)
				if err != nil {
					t.Fatalf("%s/w=%d/%s: %v", name, workers, mode.name, err)
				}
				sameRules(t, name+"/w="+mode.name, got, baseline)
			}
		}
	}
}

// TestFaultMatrixTransientWholeRelation injects budget-bounded faults
// at the RELATION layer — the session's own scans fail, not just the
// pool's — and pins that retries plus the direct fallback still
// deliver the exact baseline rules once the fault budget runs dry.
func TestFaultMatrixTransientWholeRelation(t *testing.T) {
	backends := faultMatrixBackends(t, 6000)
	base := Config{Buckets: 60, Seed: 7, Workers: 2}
	baseline, err := MineAll(backends["memory"], base)
	if err != nil {
		t.Fatal(err)
	}
	for name, rel := range backends {
		if name == "memory" {
			continue // scatter needs range scans; memory has no worker pool to retry with
		}
		// Ordinal 1 is the sampling scan — kept healthy so boundaries
		// match the baseline run; the next two scans (worker counting
		// attempts) fail, then the budget is dry and retries succeed.
		frel := relation.NewFaultRelation(rel, relation.FaultConfig{
			FailScans: []int{2, 3}, FailAfterRows: 800, MaxFaults: 2,
		})
		cfg := base
		cfg.Scatter = ScatterConfig{Workers: 2, Backoff: time.Microsecond}
		got, err := MineAll(frel, cfg)
		if err != nil {
			t.Fatalf("%s: transient faults not recovered: %v", name, err)
		}
		if frel.Injected() == 0 {
			t.Fatalf("%s: no faults were actually injected", name)
		}
		sameRules(t, name+"/transient", got, baseline)
	}
}

// TestBatchRetryExhaustionPerQueryErrors pins the terminal error
// semantics: when storage failures outlast every recovery layer
// (workers, retries, AND the coordinator's direct scan), the batch
// still returns — no panic, no deadlock — with the injected fault's
// identity in each resolved query's Answer.Err, while resolution
// errors stay per-query too.
func TestBatchRetryExhaustionPerQueryErrors(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sr := shardedOf(t, bank, 4000, 42, 3)
	fail := make([]int, 64)
	for i := range fail {
		fail[i] = i + 2 // every scan after the sampling pass fails, forever
	}
	frel := relation.NewFaultRelation(sr, relation.FaultConfig{FailScans: fail, FailAfterRows: 500})
	sess, err := NewSession(frel, Config{
		Buckets: 40, Seed: 7,
		Scatter: ScatterConfig{Workers: 2, MaxAttempts: 2, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := sess.ExecuteBatch([]Query{
		{Op: OpRules, Objective: "CardLoan", ObjectiveValue: true},
		{Op: OpRules, Numeric: "Balance", Objective: "Mortgage", ObjectiveValue: true},
		{Op: OpRules, Numeric: "NoSuchAttr", Objective: "CardLoan", ObjectiveValue: true},
	})
	if err != nil {
		t.Fatalf("storage exhaustion must scope to queries, not fail the batch: %v", err)
	}
	if len(answers) != 3 {
		t.Fatalf("got %d answers for 3 queries", len(answers))
	}
	for i := 0; i < 2; i++ {
		if !errors.Is(answers[i].Err, relation.ErrInjected) {
			t.Errorf("query %d: Answer.Err = %v, want the injected fault's identity", i, answers[i].Err)
		}
	}
	if answers[2].Err == nil || errors.Is(answers[2].Err, relation.ErrInjected) {
		t.Errorf("query 2: resolution error replaced by the storage error: %v", answers[2].Err)
	}
	// The one-shot wrappers unwrap the per-query error into a plain
	// error return — the contract the pre-scatter fault tests pinned.
	if _, err := MineAll(frel, Config{Buckets: 40, Seed: 7}); err == nil || !errors.Is(err, relation.ErrInjected) {
		t.Errorf("MineAll over broken storage: %v, want injected-fault error", err)
	}
}

// TestBatchCancellationFailsBatch pins the other half of the error
// split: context cancellation is a caller decision, not a storage
// fault, so it fails the whole batch rather than filling per-query
// errors.
func TestBatchCancellationFailsBatch(t *testing.T) {
	rel, _ := bankRelation(t, 2000)
	sess, err := NewSession(rel, Config{Buckets: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, err := sess.ExecuteBatchContext(ctx, []Query{
		{Op: OpRules, Objective: "CardLoan", ObjectiveValue: true},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned err=%v", err)
	}
	if answers != nil {
		t.Fatal("cancelled batch returned partial answers")
	}
	// The session survives a cancelled batch: the next call answers.
	got, err := sess.ExecuteBatch([]Query{{Op: OpRules, Objective: "CardLoan", ObjectiveValue: true}})
	if err != nil || got[0].Err != nil {
		t.Fatalf("session broken after cancellation: %v / %v", err, got[0].Err)
	}
}
