package miner

import (
	"math"
	"optrule/internal/datagen"
	"optrule/internal/relation"
	"strings"
	"testing"
)

func TestMineConjunctiveMatchesSingleObjective(t *testing.T) {
	// With one objective and no conditions, MineConjunctive must agree
	// with Mine (identical boundaries seed, identical thresholds).
	rel, _ := bankRelation(t, 20000)
	cfg := Config{MinConfidence: 0.55, MinSupport: 0.05, Buckets: 200, Seed: 7}
	supC, confC, err := MineConjunctive(rel, "Balance",
		[]Condition{{Attr: "CardLoan", Value: true}}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	supS, confS, err := Mine(rel, "Balance", "CardLoan", true, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if (supC == nil) != (supS == nil) || (confC == nil) != (confS == nil) {
		t.Fatalf("rule presence differs: %v/%v vs %v/%v", supC, confC, supS, confS)
	}
	if supC != nil {
		if supC.Count != supS.Count || math.Abs(supC.Confidence-supS.Confidence) > 1e-12 {
			t.Errorf("support rule differs:\nconj:   %v\nsingle: %v", supC, supS)
		}
	}
	if confC != nil {
		if confC.Count != confS.Count || math.Abs(confC.Confidence-confS.Confidence) > 1e-12 {
			t.Errorf("confidence rule differs:\nconj:   %v\nsingle: %v", confC, confS)
		}
	}
}

func TestMineConjunctiveObjective(t *testing.T) {
	// (Balance ∈ I) ⇒ (CardLoan=yes ∧ AutoWithdraw=yes). AutoWithdraw is
	// independent at 40%, so the conjunction's confidence ≈ 0.4 × the
	// single-objective confidence, and the baseline drops accordingly.
	rel, _ := bankRelation(t, 60000)
	cfg := Config{MinConfidence: 0.2, MinSupport: 0.05, Buckets: 300, Seed: 9}
	sup, conf, err := MineConjunctive(rel, "Balance",
		[]Condition{{Attr: "CardLoan", Value: true}, {Attr: "AutoWithdraw", Value: true}},
		nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil || conf == nil {
		t.Fatalf("rules missing: %v %v", sup, conf)
	}
	_, confSingle, err := Mine(rel, "Balance", "CardLoan", true, nil,
		Config{MinConfidence: 0.5, MinSupport: 0.05, Buckets: 300, Seed: 9})
	if err != nil || confSingle == nil {
		t.Fatal(err)
	}
	ratio := conf.Confidence / confSingle.Confidence
	if ratio < 0.3 || ratio > 0.5 {
		t.Errorf("conjunction confidence ratio %g, want ≈0.4 (independent AutoWithdraw)", ratio)
	}
	if !strings.Contains(conf.String(), "CardLoan=yes") || !strings.Contains(conf.String(), "AutoWithdraw=yes") {
		t.Errorf("conjunctive objective not rendered: %s", conf)
	}
	if conf.Confidence < 0.2 {
		t.Errorf("confidence %g below threshold", conf.Confidence)
	}
}

func TestMineConjunctiveWithPresumptiveCondition(t *testing.T) {
	// Full general form: (Amount ∈ I) ∧ (Pizza=yes) ⇒ (Coke=yes ∧ Potato=yes).
	rel := retailRelation(t, 50000)
	sup, _, err := MineConjunctive(rel, "Amount",
		[]Condition{{Attr: "Coke", Value: true}, {Attr: "Potato", Value: true}},
		[]Condition{{Attr: "Pizza", Value: true}},
		Config{MinConfidence: 0.25, Buckets: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil {
		t.Fatal("no rule; P(Coke ∧ Potato | Pizza) should exceed 25% with lifts")
	}
	if !strings.Contains(sup.String(), "Pizza=yes") {
		t.Errorf("presumptive condition not rendered: %s", sup)
	}
	if sup.Confidence < 0.25 {
		t.Errorf("confidence %g below threshold", sup.Confidence)
	}
}

func TestMineConjunctiveValidation(t *testing.T) {
	rel, _ := bankRelation(t, 100)
	if _, _, err := MineConjunctive(rel, "Balance", nil, nil, Config{}); err == nil {
		t.Errorf("empty objective conjunction accepted")
	}
	if _, _, err := MineConjunctive(rel, "Nope",
		[]Condition{{Attr: "CardLoan", Value: true}}, nil, Config{}); err == nil {
		t.Errorf("unknown numeric accepted")
	}
	if _, _, err := MineConjunctive(rel, "Balance",
		[]Condition{{Attr: "Balance", Value: true}}, nil, Config{}); err == nil {
		t.Errorf("numeric objective accepted")
	}
	// Contradictory C1 excludes everything: no rules, no error.
	sup, conf, err := MineConjunctive(rel, "Balance",
		[]Condition{{Attr: "CardLoan", Value: true}},
		[]Condition{{Attr: "Mortgage", Value: true}, {Attr: "Mortgage", Value: false}},
		Config{Buckets: 10})
	if err != nil || sup != nil || conf != nil {
		t.Errorf("contradictory condition should yield no rules: %v %v %v", sup, conf, err)
	}
}

// retailRelation materializes the default retail workload.
func retailRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	return datagen.MustMaterialize(ret, n, 77)
}
