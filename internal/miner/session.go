package miner

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"optrule/internal/bucketing"
	"optrule/internal/core"
	"optrule/internal/plan"
	"optrule/internal/relation"
)

// The session engine: plan → execute → extract.
//
// A Session is a long-lived handle over one relation that answers
// mining queries from cached sufficient statistics. Every query is
// first RESOLVED into the statistics it needs (internal/plan's Query
// IR), the batch's union of needs is EXECUTED in at most two relation
// scans (one fused sampling scan, one fused counting scan — cache hits
// scan nothing), and the Section 4 / §1.4 rule optimizations then
// EXTRACT answers from the in-memory statistics. The one-shot package
// functions (MineAll, Mine, MineTopK, …) are thin wrappers over a
// throwaway session, pinned rule-for-rule identical to the
// pre-session pipelines by differential tests.

// Query is the session IR: one mining request. See the plan package
// for field semantics; the zero value of each optional field selects
// the session default.
type Query = plan.Query

// Query operations.
const (
	OpRules        = plan.OpRules
	OpConjunctive  = plan.OpConjunctive
	OpTopK         = plan.OpTopK
	OpAverage      = plan.OpAverage
	OpSupportRange = plan.OpSupportRange
	OpRules2D      = plan.OpRules2D
)

// CacheStats reports the session cache's occupancy and traffic.
type CacheStats = plan.CacheStats

// Answer is one query's result. Exactly one result group is populated,
// matching the query's op: Rules (OpRules, OpConjunctive, OpTopK),
// Rules2D/Regions (OpRules2D), or Range (OpAverage, OpSupportRange).
// Err carries per-query failures (unknown attributes, invalid
// thresholds) so one bad query does not sink its batch.
type Answer struct {
	Query Query
	Err   error
	// Rules holds 1-D rules: lift-sorted for rule queries, rank-ordered
	// for top-k queries.
	Rules []Rule
	// Rules2D and Regions hold 2-D results (lift- and gain-sorted).
	Rules2D []Rule2D
	Regions []RegionRule
	// Pairs is the number of attribute pairs actually mined (OpRules2D).
	Pairs int
	// Range is the average-operator result.
	Range *AvgRange
	// Tuples is the relation size at answer time.
	Tuples int
}

// rule returns the first rule of the given kind, or nil.
func (a *Answer) rule(kind RuleKind) *Rule {
	for i := range a.Rules {
		if a.Rules[i].Kind == kind {
			return &a.Rules[i]
		}
	}
	return nil
}

// DeltaStats reports what one incremental refresh (Append or
// RefreshFromStorage) did: tail rows scanned, boundary sets
// re-sampled, entries folded vs dropped. See plan.DeltaStats.
type DeltaStats = plan.DeltaStats

// RowAppender is the storage capability Session.Append needs: an
// in-place growable relation (MemoryRelation implements it). Disk-
// backed relations grow through their own write paths instead —
// relation.AppendToSharded or the optdata append subcommand — after
// which RefreshFromStorage picks the committed tail up.
type RowAppender interface {
	relation.Relation
	Append(nums []float64, bools []bool) error
}

// StorageRefresher is the capability RefreshFromStorage needs: re-read
// the committed manifest and expose appended shards without
// invalidating in-flight scans (ShardedRelation implements it).
type StorageRefresher interface {
	relation.Relation
	Reopen() (added int, err error)
}

// Session is a long-lived mining handle over one relation: it owns an
// LRU-bounded, size-accounted cache of sufficient statistics (bucket
// boundaries, 1-D count groups, 2-D pair grids) keyed by (attributes,
// resolution, conditions), so queries that differ only in thresholds,
// rule kinds, or region classes rescan nothing. Sessions are safe for
// concurrent use; the underlying relation must support concurrent
// scans (all storage backends in this module do). Appends are
// first-class: Append and RefreshFromStorage fold new rows into the
// cached statistics with an O(Δ) tail scan instead of dropping them —
// see the package comment's "Plan/execute sessions" section.
type Session struct {
	rel relation.Relation
	cfg Config
	d   plan.Defaults
	c   *plan.LRUCache

	// refreshMu orders batches against refreshes: every batch holds the
	// read side for its whole execute+extract (so the statistics it
	// publishes were counted over the row count it planned against), and
	// a refresh holds the write side while it grows the relation and
	// folds the cache. gen and rows are guarded by it.
	refreshMu sync.RWMutex
	gen       int64
	rows      int
}

// NewSession validates cfg and creates a session over rel. The
// relation may GROW during the session's lifetime — through
// Session.Append, or externally through the storage append path plus
// RefreshFromStorage — and the cached statistics follow incrementally.
// Only in-place rewrites (changing rows the cache already summarizes)
// still require InvalidateCache.
func NewSession(rel relation.Relation, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{
		rel: rel,
		cfg: cfg,
		d: plan.Defaults{
			MinSupport:       cfg.MinSupport,
			MinConfidence:    cfg.MinConfidence,
			Buckets:          cfg.Buckets,
			GridSide:         DefaultGridSide,
			SampleFactor:     cfg.SampleFactor,
			ExactDomainLimit: cfg.ExactDomainLimit,
			Seed:             cfg.Seed,
			PEs:              cfg.PEs,
			Scatter:          cfg.Scatter,
		},
		c:    plan.NewCache(0),
		rows: rel.NumTuples(),
	}, nil
}

// SetCacheLimit rebounds the statistics cache to maxBytes (0 restores
// the default budget, negative removes the bound), evicting
// least-recently-used statistics if the new budget is exceeded.
func (s *Session) SetCacheLimit(maxBytes int64) { s.c.SetMaxBytes(maxBytes) }

// CacheStats returns the statistics cache's occupancy and traffic.
func (s *Session) CacheStats() CacheStats { return s.c.Stats() }

// StatsCache exposes the session's statistics cache. Differential
// tests use it (e.g. LRUCache.CopyBoundsFrom pins a control session to
// another session's sampled boundaries); normal callers never need it.
func (s *Session) StatsCache() *plan.LRUCache { return s.c }

// InvalidateCache drops every cached statistic. It is needed ONLY
// after an in-place rewrite — rows the cache already summarizes
// changed under it. Plain growth does not require it: Append and
// RefreshFromStorage fold appended rows into the cache with an O(Δ)
// tail scan instead of recounting everything.
func (s *Session) InvalidateCache() {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.c.Invalidate()
	s.rows = s.rel.NumTuples()
	s.gen++ // defense in depth: no pre-rewrite partial may ever merge
}

// Append adds rows to the session's relation (which must be a
// RowAppender, e.g. a MemoryRelation) and incrementally folds them
// into every cached statistic: a counting scan over just the appended
// tail, integer-exact merges, and — only when accumulated growth
// exceeds the Section 3.4 bucket-error budget — a boundary re-sample.
// Each row i is nums[i]/bools[i] in schema column order. On a row
// error nothing is appended; rows are validated before any lands.
func (s *Session) Append(nums [][]float64, bools [][]bool) (DeltaStats, error) {
	return s.AppendContext(context.Background(), nums, bools)
}

// AppendContext is Append under a context governing the tail scan.
func (s *Session) AppendContext(ctx context.Context, nums [][]float64, bools [][]bool) (DeltaStats, error) {
	ra, ok := s.rel.(RowAppender)
	if !ok {
		return DeltaStats{}, fmt.Errorf("miner: relation %T cannot append rows in place; grow the storage and call RefreshFromStorage", s.rel)
	}
	if len(nums) != len(bools) {
		return DeltaStats{}, fmt.Errorf("miner: %d numeric rows vs %d boolean rows", len(nums), len(bools))
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	for i := range nums {
		if err := ra.Append(nums[i], bools[i]); err != nil {
			if i > 0 {
				// Earlier rows of the batch landed; the cache must not go
				// stale. Fold what was appended before reporting.
				if _, ferr := s.refreshLocked(ctx); ferr != nil {
					return DeltaStats{}, fmt.Errorf("miner: append row %d: %v (and refreshing the partial batch: %w)", i, err, ferr)
				}
			}
			return DeltaStats{}, fmt.Errorf("miner: append row %d: %w", i, err)
		}
	}
	return s.refreshLocked(ctx)
}

// Refresh folds any in-place growth of the underlying relation into
// the cached statistics: use it when rows were appended to the
// relation object directly (a shared MemoryRelation, an instrumented
// wrapper) rather than through Session.Append. Shrinkage falls back to
// invalidation, like any non-append change.
func (s *Session) Refresh() (DeltaStats, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.refreshLocked(context.Background())
}

// RefreshFromStorage picks up rows appended to the session's storage
// outside the session — relation.AppendToSharded, the optdata append
// subcommand, another process — and folds them into the cached
// statistics exactly like Append. The relation must be a
// StorageRefresher (e.g. a ShardedRelation); its Reopen guarantees
// in-flight scans keep their pre-refresh snapshot.
func (s *Session) RefreshFromStorage() (DeltaStats, error) {
	return s.RefreshFromStorageContext(context.Background())
}

// RefreshFromStorageContext is RefreshFromStorage under a context.
func (s *Session) RefreshFromStorageContext(ctx context.Context) (DeltaStats, error) {
	sr, ok := s.rel.(StorageRefresher)
	if !ok {
		return DeltaStats{}, fmt.Errorf("miner: relation %T cannot reopen from storage", s.rel)
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if _, err := sr.Reopen(); err != nil {
		return DeltaStats{}, fmt.Errorf("miner: refresh: %w", err)
	}
	return s.refreshLocked(ctx)
}

// refreshLocked folds the relation's growth since the last refresh
// into the cache. Caller holds refreshMu.
func (s *Session) refreshLocked(ctx context.Context) (DeltaStats, error) {
	newN := s.rel.NumTuples()
	if newN == s.rows {
		return DeltaStats{OldRows: s.rows, NewRows: newN}, nil
	}
	ds, err := plan.RunDelta(ctx, s.rel, s.d, s.c, s.rows, newN, s.gen+1)
	if err != nil {
		// The relation already grew; the cache may hold pre-growth
		// statistics a later batch would serve as covering. Fail safe.
		s.c.Invalidate()
		s.rows = newN
		s.gen++
		return ds, fmt.Errorf("miner: delta refresh: %w (cache invalidated)", err)
	}
	s.rows = newN
	s.gen++
	return ds, nil
}

// ExecuteBatch answers a batch of queries together: the planner
// dedupes the sufficient statistics the whole batch needs, the
// executor materializes the cache misses in at most TWO relation scans
// (zero when everything is cached), and extraction runs per query on
// the in-memory statistics. The returned slice is parallel to queries;
// per-query failures — resolution errors AND storage failures the
// scatter-gather executor could not recover from — land in Answer.Err,
// so a batch always returns one answer per query when the caller's
// context is live.
func (s *Session) ExecuteBatch(queries []Query) ([]Answer, error) {
	return s.ExecuteBatchContext(context.Background(), queries)
}

// ExecuteBatchContext is ExecuteBatch with a context: cancellation or
// deadline expiry aborts the batch's scans and fails the whole batch
// with the context's error. Storage failures, by contrast, are scoped
// to the queries they starve — every resolved query gets the scan
// error in its Answer.Err and the batch itself returns nil error, so
// callers draining a mixed batch see exactly which answers are usable.
func (s *Session) ExecuteBatchContext(ctx context.Context, queries []Query) ([]Answer, error) {
	// The read side of refreshMu spans resolve, execute, AND extract: a
	// concurrent Append cannot slip between the batch planning against N
	// rows and publishing statistics counted over them, so every cache
	// entry's generation tag is truthful.
	s.refreshMu.RLock()
	defer s.refreshMu.RUnlock()
	answers := make([]Answer, len(queries))
	resolved := make([]*plan.Resolved, len(queries))
	req := plan.NewRequirements()
	req.Gen = s.gen
	for i, q := range queries {
		answers[i].Query = q
		r, err := plan.Resolve(s.rel, s.d, q)
		if err != nil {
			answers[i].Err = err
			continue
		}
		resolved[i] = r
		req.Add(r)
	}
	set, err := plan.RunContext(ctx, s.rel, s.d, s.c, req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		for i, r := range resolved {
			if r == nil {
				continue
			}
			answers[i].Err = fmt.Errorf("miner: materializing statistics: %w", err)
		}
		return answers, nil
	}
	for i, r := range resolved {
		if r == nil {
			continue
		}
		s.extract(&answers[i], r, set)
	}
	return answers, nil
}

// extract answers one resolved query from the batch's working set.
func (s *Session) extract(a *Answer, r *plan.Resolved, set *plan.StatsSet) {
	a.Tuples = s.rel.NumTuples()
	var err error
	switch r.Op {
	case plan.OpRules:
		a.Rules, err = s.extractRules(r, set)
	case plan.OpConjunctive:
		a.Rules, err = s.extractConjunctive(r, set)
	case plan.OpTopK:
		a.Rules, err = s.extractTopK(r, set)
	case plan.OpAverage, plan.OpSupportRange:
		a.Range, err = s.extractAverage(r, set)
	case plan.OpRules2D:
		var res *Result2D
		res, err = s.extract2D(r, set)
		if err == nil {
			a.Rules2D, a.Regions, a.Pairs = res.Rules, res.Regions, res.Pairs
		}
	default:
		err = fmt.Errorf("miner: unknown op %v", r.Op)
	}
	a.Err = err
}

// extractRules runs the Section 4 algorithms for every driver of a
// 1-D rule query on the worker pool and merges the per-driver rule
// sets in schema order, sorted by descending lift — exactly the
// MineAll assembly.
func (s *Session) extractRules(r *plan.Resolved, set *plan.StatsSet) ([]Rule, error) {
	schema := s.rel.Schema()
	type out struct {
		pos   int
		rules []Rule
		err   error
	}
	jobs := make(chan int)
	outs := make(chan out, len(r.Drivers))
	workers := s.cfg.Workers
	if workers > len(r.Drivers) {
		workers = len(r.Drivers)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				st, ok := set.Groups[r.Keys[pos]]
				if !ok {
					outs <- out{pos: pos, err: fmt.Errorf("miner: group %+v missing from working set", r.Keys[pos])}
					continue
				}
				counts, err := st.Counts(r.Objs, nil, true)
				if err != nil {
					outs <- out{pos: pos, err: err}
					continue
				}
				rules, err := extractRulesFromCounts(schema, r.Drivers[pos], r.Objs, r.Filter,
					r.Kinds, r.MinSupport, r.MinConfidence, counts)
				outs <- out{pos: pos, rules: rules, err: err}
			}
		}()
	}
	for pos := range r.Drivers {
		jobs <- pos
	}
	close(jobs)
	wg.Wait()
	close(outs)
	byPos := make([][]Rule, len(r.Drivers))
	for o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		byPos[o.pos] = o.rules
	}
	var rules []Rule
	for _, rs := range byPos {
		rules = append(rules, rs...)
	}
	sort.SliceStable(rules, func(i, j int) bool {
		return rules[i].Lift() > rules[j].Lift()
	})
	return rules, nil
}

// extractConjunctive reruns the §4.3 recipe on the two cached groups:
// u_i over C1 and v_i over C1 ∧ C2 share one set of boundaries.
func (s *Session) extractConjunctive(r *plan.Resolved, set *plan.StatsSet) ([]Rule, error) {
	schema := s.rel.Schema()
	uStats, ok := set.Groups[r.UKey]
	if !ok {
		return nil, fmt.Errorf("miner: group %+v missing from working set", r.UKey)
	}
	vStats, ok := set.Groups[r.VKey]
	if !ok {
		return nil, fmt.Errorf("miner: group %+v missing from working set", r.VKey)
	}
	uCounts, err := uStats.Counts(nil, nil, true)
	if err != nil {
		return nil, err
	}
	if uCounts.N == 0 {
		return nil, nil // C1 excludes everything
	}
	// Compact on u (v is bounded by u bucketwise).
	compact, keep := uCounts.Compact()
	v := make([]float64, compact.M)
	hits := 0
	for j, i := range keep {
		v[j] = float64(vStats.U[i])
		hits += vStats.U[i]
	}
	cond := condString(schema, r.C1)
	objNames := condString(schema, r.C2)
	base := Rule{
		Numeric:   schema[r.Drivers[0]].Name,
		Objective: objNames,
		// ObjectiveValue is absorbed into the rendered conjunction.
		ObjectiveValue: true,
		Condition:      cond,
		Baseline:       float64(hits) / float64(compact.N),
		Buckets:        compact.M,
	}
	return appendKindRules(nil, base, compact, v, r.Kinds, r.MinSupport, r.MinConfidence)
}

// extractTopK mines the ranked disjoint ranges from the cached group.
func (s *Session) extractTopK(r *plan.Resolved, set *plan.StatsSet) ([]Rule, error) {
	schema := s.rel.Schema()
	st, ok := set.Groups[r.Keys[0]]
	if !ok {
		return nil, fmt.Errorf("miner: group %+v missing from working set", r.Keys[0])
	}
	counts, err := st.Counts(r.Objs, nil, true)
	if err != nil {
		return nil, err
	}
	compact, _ := counts.Compact()
	v := make([]float64, compact.M)
	hits := 0
	for i, c := range compact.V[0] {
		v[i] = float64(c)
		hits += c
	}
	var pairs []core.Pair
	switch r.Kinds[0] {
	case OptimizedConfidence:
		pairs, err = core.TopKSlopePairs(compact.U, v, r.MinSupport*float64(compact.N), r.K)
	case OptimizedSupport:
		pairs, err = core.TopKSupportPairs(compact.U, v, r.MinConfidence, r.K)
	default:
		return nil, fmt.Errorf("miner: unknown rule kind %v", r.Kinds[0])
	}
	if err != nil {
		return nil, err
	}
	rules := make([]Rule, 0, len(pairs))
	for _, p := range pairs {
		rule := Rule{
			Kind:           r.Kinds[0],
			Numeric:        schema[r.Drivers[0]].Name,
			Objective:      schema[r.Objs[0].Attr].Name,
			ObjectiveValue: r.Objs[0].Want,
			Baseline:       float64(hits) / float64(compact.N),
			Buckets:        compact.M,
		}
		fillPair(&rule, p, compact)
		rules = append(rules, rule)
	}
	return rules, nil
}

// extractAverage answers the Section 5 decision-support queries from
// the cached group's per-bucket target sums.
func (s *Session) extractAverage(r *plan.Resolved, set *plan.StatsSet) (*AvgRange, error) {
	schema := s.rel.Schema()
	st, ok := set.Groups[r.Keys[0]]
	if !ok {
		return nil, fmt.Errorf("miner: group %+v missing from working set", r.Keys[0])
	}
	counts, err := st.Counts(nil, []int{r.Target}, true)
	if err != nil {
		return nil, err
	}
	compact, _ := counts.Compact()
	driver := schema[r.Drivers[0]].Name
	target := schema[r.Target].Name
	var p core.Pair
	var found bool
	if r.Op == plan.OpAverage {
		p, found, err = core.OptimalSlopePair(compact.U, compact.Sum[0], r.MinSupport*float64(compact.N))
		if err == nil && !found {
			err = fmt.Errorf("miner: no range reaches support %g", r.MinSupport)
		}
	} else {
		p, found, err = core.OptimalSupportPair(compact.U, compact.Sum[0], r.MinAverage)
		if err == nil && !found {
			err = fmt.Errorf("miner: no range reaches average %g", r.MinAverage)
		}
	}
	if err != nil {
		return nil, err
	}
	out := fillAvg(driver, target, p, compact)
	return &out, nil
}

// extract2D assembles the 2-D engine over the batch's cached pair
// grids and runs the region kernels (all2d.go).
func (s *Session) extract2D(r *plan.Resolved, set *plan.StatsSet) (*Result2D, error) {
	schema := s.rel.Schema()
	cfg := s.cfg
	cfg.MinSupport, cfg.MinConfidence = r.MinSupport, r.MinConfidence
	eng := &engine2D{
		cfg: cfg,
		opt: Options2D{
			Numerics:       r.Names,
			Objective:      schema[r.ObjAttr].Name,
			ObjectiveValue: r.ObjWant,
			Kinds:          r.Kinds,
			Regions:        r.Regions,
			GridSide:       r.Side,
		},
		attrs:   r.Attrs,
		names:   r.Names,
		objAttr: r.ObjAttr,
		side:    r.Side,
		tuples:  s.rel.NumTuples(),
		bounds:  make([]bucketing.Boundaries, len(r.Attrs)),
	}
	for k, attr := range r.Attrs {
		b, ok := set.Bounds[plan.BoundKey{Attr: attr, M: r.Side}]
		if !ok {
			return nil, fmt.Errorf("miner: boundaries for attribute %d missing from working set", attr)
		}
		eng.bounds[k] = b
	}
	pk := 0
	for i := 0; i < len(r.Attrs); i++ {
		for j := i + 1; j < len(r.Attrs); j++ {
			st, ok := set.Pairs[r.PairKys[pk]]
			pk++
			if !ok {
				return nil, fmt.Errorf("miner: pair grid (%s, %s) missing from working set", r.Names[i], r.Names[j])
			}
			eng.pairs = append(eng.pairs, pair2D{
				ai: i, bi: j, grid: st.Grid,
				minA: st.MinA, maxA: st.MaxA,
				minB: st.MinB, maxB: st.MaxB,
				n: st.N, hits: st.Hits,
			})
		}
	}
	return eng.mineAll()
}

// --- Session-bound variants of the one-shot entry points. Each builds
// the corresponding Query, so repeated calls share the session cache:
// re-querying with different thresholds, kinds, or region classes
// rescans nothing.

// MineAll mines both optimized rules for every (numeric, Boolean)
// attribute combination under the session config. See the package
// function MineAll.
func (s *Session) MineAll() (*Result, error) {
	kinds := []RuleKind{OptimizedSupport, OptimizedConfidence}
	if s.cfg.MineGain {
		kinds = append(kinds, OptimizedGain)
	}
	a, err := s.one(Query{Op: OpRules, Kinds: kinds, Negations: s.cfg.MineNegations})
	if err != nil {
		return nil, err
	}
	return &Result{Rules: a.Rules, Tuples: a.Tuples, Config: s.cfg}, nil
}

// Mine computes the optimized-support and optimized-confidence rules
// for one (numeric, Boolean) attribute pair, optionally under
// presumptive conditions. See the package function Mine.
func (s *Session) Mine(numeric, objective string, objectiveValue bool,
	conditions []Condition) (supportRule, confidenceRule *Rule, err error) {
	a, err := s.one(Query{
		Op: OpRules, Numeric: numeric, Objective: objective,
		ObjectiveValue: objectiveValue, Conditions: conditions,
	})
	if err != nil {
		return nil, nil, err
	}
	return a.rule(OptimizedSupport), a.rule(OptimizedConfidence), nil
}

// MineConjunctive mines the fully general §4.3 rule form. See the
// package function MineConjunctive.
func (s *Session) MineConjunctive(numeric string, objectives, conditions []Condition) (supportRule, confidenceRule *Rule, err error) {
	a, err := s.one(Query{
		Op: OpConjunctive, Numeric: numeric,
		Objectives: objectives, Conditions: conditions,
	})
	if err != nil {
		return nil, nil, err
	}
	return a.rule(OptimizedSupport), a.rule(OptimizedConfidence), nil
}

// MineTopK mines up to k pairwise-disjoint optimized ranges. See the
// package function MineTopK.
func (s *Session) MineTopK(numeric, objective string, objectiveValue bool,
	kind RuleKind, k int) ([]Rule, error) {
	a, err := s.one(Query{
		Op: OpTopK, Numeric: numeric, Objective: objective,
		ObjectiveValue: objectiveValue, Kinds: []RuleKind{kind}, K: k,
	})
	if err != nil {
		return nil, err
	}
	return a.Rules, nil
}

// MaxAverageRange finds the driver range maximizing the target average
// among ranges with support at least minSupport. See the package
// function MaxAverageRange.
func (s *Session) MaxAverageRange(driver, target string, minSupport float64) (AvgRange, error) {
	a, err := s.one(Query{Op: OpAverage, Numeric: driver, Target: target, MinSupport: minSupport})
	if err != nil {
		return AvgRange{}, err
	}
	return *a.Range, nil
}

// MaxSupportRange finds the driver range maximizing support among
// ranges with target average at least minAverage. See the package
// function MaxSupportRange.
func (s *Session) MaxSupportRange(driver, target string, minAverage float64) (AvgRange, error) {
	a, err := s.one(Query{Op: OpSupportRange, Numeric: driver, Target: target, MinAverage: minAverage})
	if err != nil {
		return AvgRange{}, err
	}
	return *a.Range, nil
}

// MineAll2D mines 2-D optimized rules for every requested attribute
// pair. See the package function MineAll2D.
func (s *Session) MineAll2D(opt Options2D) (*Result2D, error) {
	q := Query{
		Op: OpRules2D, Numerics: opt.Numerics,
		Objective: opt.Objective, ObjectiveValue: opt.ObjectiveValue,
		Kinds: opt.Kinds, Regions: opt.Regions, GridSide: opt.GridSide,
	}
	a, err := s.one(q)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	return &Result2D{Rules: a.Rules2D, Regions: a.Regions, Pairs: a.Pairs,
		Tuples: a.Tuples, Config: cfg}, nil
}

// Mine2D mines the optimized rectangle rule of one kind over one
// attribute pair. See the package function Mine2D.
func (s *Session) Mine2D(numericA, numericB, objective string, objectiveValue bool,
	kind RuleKind, gridSide int) (*Rule2D, error) {
	a, err := s.one(Query{
		Op: OpRules2D, Numeric: numericA, NumericB: numericB,
		Objective: objective, ObjectiveValue: objectiveValue,
		Kinds: []RuleKind{kind}, GridSide: gridSide,
	})
	if err != nil {
		return nil, err
	}
	if a.Pairs == 0 {
		return nil, fmt.Errorf("miner: no tuples with finite (%s, %s) values", numericA, numericB)
	}
	if len(a.Rules2D) == 0 {
		return nil, nil
	}
	return &a.Rules2D[0], nil
}

// MineXMonotone mines the gain-optimal x-monotone region over one
// attribute pair. See the package function MineXMonotone.
func (s *Session) MineXMonotone(numericA, numericB, objective string, objectiveValue bool,
	gridSide int) (*RegionRule, error) {
	return s.mineRegion(numericA, numericB, objective, objectiveValue, gridSide, XMonotoneClass)
}

// MineRectilinearConvex mines the gain-optimal rectilinear-convex
// region over one attribute pair. See the package function
// MineRectilinearConvex.
func (s *Session) MineRectilinearConvex(numericA, numericB, objective string, objectiveValue bool,
	gridSide int) (*RegionRule, error) {
	return s.mineRegion(numericA, numericB, objective, objectiveValue, gridSide, RectilinearConvexClass)
}

func (s *Session) mineRegion(numericA, numericB, objective string, objectiveValue bool,
	gridSide int, class RegionClass) (*RegionRule, error) {
	a, err := s.one(Query{
		Op: OpRules2D, Numeric: numericA, NumericB: numericB,
		Objective: objective, ObjectiveValue: objectiveValue,
		Kinds: []RuleKind{}, Regions: []RegionClass{class}, GridSide: gridSide,
	})
	if err != nil {
		return nil, err
	}
	if a.Pairs == 0 {
		return nil, fmt.Errorf("miner: no tuples with finite (%s, %s) values", numericA, numericB)
	}
	if len(a.Regions) == 0 {
		return nil, nil
	}
	return &a.Regions[0], nil
}

// one executes a single-query batch and unwraps its answer.
func (s *Session) one(q Query) (*Answer, error) {
	answers, err := s.ExecuteBatch([]Query{q})
	if err != nil {
		return nil, err
	}
	if answers[0].Err != nil {
		return nil, answers[0].Err
	}
	return &answers[0], nil
}
