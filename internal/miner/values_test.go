package miner

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMineValuesSimple(t *testing.T) {
	// Ages 20..29, hits only for 24..26.
	var values []float64
	var hits []bool
	for age := 20; age < 30; age++ {
		for k := 0; k < 10; k++ {
			values = append(values, float64(age))
			hits = append(hits, age >= 24 && age <= 26)
		}
	}
	sup, conf, err := MineValues(values, hits, 0.1, 0.9, "Age", "Hit")
	if err != nil {
		t.Fatal(err)
	}
	if sup == nil || conf == nil {
		t.Fatal("rules missing")
	}
	if sup.Low != 24 || sup.High != 26 || sup.Count != 30 || sup.Confidence != 1 {
		t.Errorf("support rule = %+v, want exactly [24, 26]", sup)
	}
	if conf.Confidence != 1 || conf.Count < 10 {
		t.Errorf("confidence rule = %+v", conf)
	}
	if sup.Buckets != 10 {
		t.Errorf("expected 10 finest buckets, got %d", sup.Buckets)
	}
}

func TestMineValuesSortedAndUnsortedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	values := make([]float64, n)
	hits := make([]bool, n)
	for i := range values {
		values[i] = float64(rng.Intn(200))
		hits[i] = rng.Float64() < 0.3+0.4*boolTo(values[i] >= 50 && values[i] <= 80)
	}
	sup1, conf1, err := MineValues(values, hits, 0.05, 0.5, "X", "B")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-sort with the same permutation and re-mine.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sv := make([]float64, n)
	sh := make([]bool, n)
	for p, i := range idx {
		sv[p] = values[i]
		sh[p] = hits[i]
	}
	sup2, conf2, err := MineValues(sv, sh, 0.05, 0.5, "X", "B")
	if err != nil {
		t.Fatal(err)
	}
	if *sup1 != *sup2 || *conf1 != *conf2 {
		t.Errorf("sorted and unsorted inputs disagree:\n%v\n%v\n%v\n%v", sup1, sup2, conf1, conf2)
	}
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestMineValuesValidation(t *testing.T) {
	if _, _, err := MineValues(nil, nil, 0.1, 0.5, "X", "B"); err == nil {
		t.Errorf("empty input accepted")
	}
	if _, _, err := MineValues([]float64{1}, []bool{true, false}, 0.1, 0.5, "X", "B"); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, _, err := MineValues([]float64{1}, []bool{true}, -0.1, 0.5, "X", "B"); err == nil {
		t.Errorf("bad support accepted")
	}
	if _, _, err := MineValues([]float64{1}, []bool{true}, 0.1, 1.5, "X", "B"); err == nil {
		t.Errorf("bad confidence accepted")
	}
}

func TestMineValuesMatchesRelationExactMode(t *testing.T) {
	// MineValues on raw slices must equal Mine with ExactDomainLimit on
	// the same data (both use finest buckets).
	rel := ageRelation(t, 20000)
	ages, _ := rel.NumericColumn(0)
	hits, _ := rel.BoolColumn(1)
	supV, _, err := MineValues(ages, hits, 0.05, 0.5, "Age", "Mortgage")
	if err != nil {
		t.Fatal(err)
	}
	supR, _, err := Mine(rel, "Age", "Mortgage", true, nil, Config{
		MinSupport: 0.05, MinConfidence: 0.5, ExactDomainLimit: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if supV == nil || supR == nil {
		t.Fatal("rules missing")
	}
	if supV.Count != supR.Count || supV.Low != supR.Low || supV.High != supR.High {
		t.Errorf("slice mining %+v != exact relation mining %+v", supV, supR)
	}
}

func TestMineValuesConfidenceRuleProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%2000) + 10
		values := make([]float64, n)
		hits := make([]bool, n)
		for i := range values {
			values[i] = float64(rng.Intn(50))
			hits[i] = rng.Intn(3) == 0
		}
		sup, conf, err := MineValues(values, hits, 0.1, 0.4, "X", "B")
		if err != nil {
			return false
		}
		if sup != nil && sup.Confidence < 0.4 {
			return false
		}
		if conf != nil && float64(conf.Count) < 0.1*float64(n)-1e-9 {
			return false
		}
		// When the support rule's range is itself ample (so it is a
		// feasible candidate for the confidence optimization), the
		// confidence rule cannot do worse.
		if sup != nil && conf != nil && float64(sup.Count) >= 0.1*float64(n) &&
			conf.Confidence < sup.Confidence-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
