package miner

import (
	"fmt"
	"math"

	"optrule/internal/bucketing"
	"optrule/internal/region"
	"optrule/internal/relation"
)

// Rule2D is a mined two-dimensional optimized rule (§1.4):
// ((A1, A2) ∈ [LowA, HighA] × [LowB, HighB]) ⇒ (Objective = Value).
type Rule2D struct {
	Kind           RuleKind
	NumericA       string
	NumericB       string
	LowA, HighA    float64
	LowB, HighB    float64
	Objective      string
	ObjectiveValue bool
	Support        float64
	Count          int
	Confidence     float64
	Baseline       float64
	Gain           float64 // OptimizedGain only
	GridRows       int
	GridCols       int
}

// Lift is Confidence / Baseline (+Inf when the baseline is zero).
func (r Rule2D) Lift() float64 {
	if r.Baseline == 0 {
		return math.Inf(1)
	}
	return r.Confidence / r.Baseline
}

// String renders the rule in the paper's notation.
func (r Rule2D) String() string {
	val := "yes"
	if !r.ObjectiveValue {
		val = "no"
	}
	return fmt.Sprintf("(%s in [%.6g, %.6g]) and (%s in [%.6g, %.6g]) => (%s=%s)  [%s: support %.2f%%, confidence %.2f%%, lift %.2f]",
		r.NumericA, r.LowA, r.HighA, r.NumericB, r.LowB, r.HighB,
		r.Objective, val, r.Kind, 100*r.Support, 100*r.Confidence, r.Lift())
}

// DefaultGridSide is the per-axis bucket count for 2-D mining: the
// rectangle sweep is O(side³), so side stays much smaller than the 1-D
// bucket counts. With the parallel region kernels, sides up to 256 are
// practical for targeted pairs; DefaultGridSide stays modest because
// MineAll2D multiplies the kernel cost by d(d−1)/2 pairs.
const DefaultGridSide = 64

// Mine2D mines the optimized rectangle rule of the given kind over two
// numeric attributes. gridSide buckets are used per axis (0 selects
// DefaultGridSide). For OptimizedConfidence the constraint is
// cfg.MinSupport; for OptimizedSupport and OptimizedGain it is
// cfg.MinConfidence.
//
// Mine2D runs on the session 2-D engine (see MineAll2D): one fused
// sampling scan derives BOTH axes' bucket boundaries, one counting
// scan fills the grid, and the rectangle sweep runs on the parallel
// region kernels — three relation scans in the legacy pipeline, two
// here. Boundaries come from the same per-attribute random streams the
// legacy path used, so mined rules are identical.
func Mine2D(rel relation.Relation, numericA, numericB, objective string, objectiveValue bool,
	kind RuleKind, gridSide int, cfg Config) (*Rule2D, error) {
	s, err := NewSession(rel, cfg)
	if err != nil {
		return nil, err
	}
	return s.Mine2D(numericA, numericB, objective, objectiveValue, kind, gridSide)
}

// Mine2DPerPair is the legacy single-pair pipeline: two independent
// sampling passes (one per axis), one grid-counting scan, and the
// serial rectangle sweep — three relation scans per pair where the
// fused engine pays two TOTAL for any number of pairs. It is kept as
// the differential-testing reference and benchmark baseline for
// Mine2D/MineAll2D, which must produce rule-for-rule identical output.
func Mine2DPerPair(rel relation.Relation, numericA, numericB, objective string, objectiveValue bool,
	kind RuleKind, gridSide int, cfg Config) (*Rule2D, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gridSide == 0 {
		gridSide = DefaultGridSide
	}
	if gridSide < 1 {
		return nil, fmt.Errorf("miner: grid side %d must be positive", gridSide)
	}
	s := rel.Schema()
	aAttr := s.Index(numericA)
	if aAttr < 0 || s[aAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numericA)
	}
	bAttr := s.Index(numericB)
	if bAttr < 0 || s[bAttr].Kind != relation.Numeric {
		return nil, fmt.Errorf("miner: %q is not a numeric attribute", numericB)
	}
	if aAttr == bAttr {
		return nil, fmt.Errorf("miner: the two numeric attributes must differ")
	}
	objAttr := s.Index(objective)
	if objAttr < 0 || s[objAttr].Kind != relation.Boolean {
		return nil, fmt.Errorf("miner: %q is not a Boolean attribute", objective)
	}
	if rel.NumTuples() == 0 {
		return nil, fmt.Errorf("miner: empty relation")
	}

	rngA := attrRNG(cfg.Seed, aAttr)
	boundsA, err := bucketing.SampledBoundaries(rel, aAttr, gridSide, cfg.SampleFactor, rngA)
	if err != nil {
		return nil, err
	}
	rngB := attrRNG(cfg.Seed, bAttr)
	boundsB, err := bucketing.SampledBoundaries(rel, bAttr, gridSide, cfg.SampleFactor, rngB)
	if err != nil {
		return nil, err
	}

	grid, err := region.NewGrid(boundsA.NumBuckets(), boundsB.NumBuckets())
	if err != nil {
		return nil, err
	}
	// Per-axis observed extremes, for reporting value ranges.
	minA := make([]float64, boundsA.NumBuckets())
	maxA := make([]float64, boundsA.NumBuckets())
	minB := make([]float64, boundsB.NumBuckets())
	maxB := make([]float64, boundsB.NumBuckets())
	for i := range minA {
		minA[i], maxA[i] = math.Inf(1), math.Inf(-1)
	}
	for i := range minB {
		minB[i], maxB[i] = math.Inf(1), math.Inf(-1)
	}
	n, hits := 0, 0
	cols := relation.ColumnSet{Numeric: []int{aAttr, bAttr}, Bool: []int{objAttr}}
	err = rel.Scan(cols, func(batch *relation.Batch) error {
		for row := 0; row < batch.Len; row++ {
			a := batch.Numeric[0][row]
			b := batch.Numeric[1][row]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			ra := boundsA.Locate(a)
			cb := boundsB.Locate(b)
			grid.U[ra][cb]++
			n++
			if batch.Bool[0][row] == objectiveValue {
				grid.V[ra][cb]++
				hits++
			}
			if a < minA[ra] {
				minA[ra] = a
			}
			if a > maxA[ra] {
				maxA[ra] = a
			}
			if b < minB[cb] {
				minB[cb] = b
			}
			if b > maxB[cb] {
				maxB[cb] = b
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("miner: no tuples with finite (%s, %s) values", numericA, numericB)
	}

	var rect region.Rect
	var ok bool
	switch kind {
	case OptimizedConfidence:
		rect, ok, err = region.OptimalRectConfidence(grid, cfg.MinSupport*float64(n))
	case OptimizedSupport:
		rect, ok, err = region.OptimalRectSupport(grid, cfg.MinConfidence)
	case OptimizedGain:
		rect, ok, err = region.MaxGainRect(grid, cfg.MinConfidence)
		if err == nil && ok && rect.Gain <= 0 {
			ok = false // no rectangle beats the threshold anywhere
		}
	default:
		return nil, fmt.Errorf("miner: unknown rule kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}

	out := &Rule2D{
		Kind:           kind,
		NumericA:       numericA,
		NumericB:       numericB,
		Objective:      objective,
		ObjectiveValue: objectiveValue,
		Support:        float64(rect.Count) / float64(n),
		Count:          rect.Count,
		Confidence:     rect.Conf,
		Baseline:       float64(hits) / float64(n),
		Gain:           rect.Gain,
		GridRows:       grid.Rows(),
		GridCols:       grid.Cols(),
	}
	// Observed value ranges over the rectangle's rows/columns; empty
	// rows or columns inside the rectangle contribute ±Inf extremes that
	// min/max absorb naturally.
	out.LowA, out.HighA = math.Inf(1), math.Inf(-1)
	for r := rect.R1; r <= rect.R2; r++ {
		if minA[r] < out.LowA {
			out.LowA = minA[r]
		}
		if maxA[r] > out.HighA {
			out.HighA = maxA[r]
		}
	}
	out.LowB, out.HighB = math.Inf(1), math.Inf(-1)
	for c := rect.C1; c <= rect.C2; c++ {
		if minB[c] < out.LowB {
			out.LowB = minB[c]
		}
		if maxB[c] > out.HighB {
			out.HighB = maxB[c]
		}
	}
	return out, nil
}
