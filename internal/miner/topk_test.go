package miner

import (
	"math/rand"
	"testing"

	"optrule/internal/relation"
)

// twoClusterRelation plants TWO disjoint high-confidence ranges of X
// for objective B: [100, 200] at ~0.9 and [600, 700] at ~0.75, against
// a 0.05 background.
func twoClusterRelation(t testing.TB, n int) *relation.MemoryRelation {
	t.Helper()
	rel := relation.MustNewMemoryRelation(relation.Schema{
		{Name: "X", Kind: relation.Numeric},
		{Name: "B", Kind: relation.Boolean},
	})
	rng := rand.New(rand.NewSource(77))
	rel.Grow(n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		p := 0.05
		switch {
		case x >= 100 && x <= 200:
			p = 0.9
		case x >= 600 && x <= 700:
			p = 0.75
		}
		rel.MustAppend([]float64{x}, []bool{rng.Float64() < p})
	}
	return rel
}

func TestMineTopKConfidenceFindsBothClusters(t *testing.T) {
	rel := twoClusterRelation(t, 60000)
	rules, err := MineTopK(rel, "X", "B", true, OptimizedConfidence, 3, Config{
		MinSupport: 0.05, Buckets: 400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 2 {
		t.Fatalf("expected >= 2 disjoint rules, got %d", len(rules))
	}
	// First rule: the 0.9 cluster; second: the 0.75 cluster.
	r0, r1 := rules[0], rules[1]
	if r0.Low < 50 || r0.High > 250 {
		t.Errorf("first rule [%g, %g] should cover the 0.9 cluster [100, 200]", r0.Low, r0.High)
	}
	if r1.Low < 550 || r1.High > 750 {
		t.Errorf("second rule [%g, %g] should cover the 0.75 cluster [600, 700]", r1.Low, r1.High)
	}
	if r0.Confidence < r1.Confidence {
		t.Errorf("rules out of confidence order: %g < %g", r0.Confidence, r1.Confidence)
	}
	// Disjoint ranges.
	if r0.High >= r1.Low && r1.High >= r0.Low {
		t.Errorf("rules overlap: [%g,%g] and [%g,%g]", r0.Low, r0.High, r1.Low, r1.High)
	}
	for _, r := range rules {
		if r.Support < 0.05-1e-9 {
			t.Errorf("rule support %g below floor", r.Support)
		}
	}
}

func TestMineTopKSupportOrder(t *testing.T) {
	rel := twoClusterRelation(t, 60000)
	rules, err := MineTopK(rel, "X", "B", true, OptimizedSupport, 3, Config{
		MinConfidence: 0.7, Buckets: 400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 2 {
		t.Fatalf("expected >= 2 rules, got %d", len(rules))
	}
	for i, r := range rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule %d confidence %g below threshold", i, r.Confidence)
		}
		if i > 0 && r.Count > rules[i-1].Count {
			t.Errorf("rules not in decreasing support order")
		}
	}
}

func TestMineTopKValidation(t *testing.T) {
	rel := twoClusterRelation(t, 100)
	if _, err := MineTopK(rel, "X", "B", true, OptimizedConfidence, 0, Config{}); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := MineTopK(rel, "Nope", "B", true, OptimizedConfidence, 1, Config{}); err == nil {
		t.Errorf("unknown numeric accepted")
	}
	if _, err := MineTopK(rel, "X", "Nope", true, OptimizedConfidence, 1, Config{}); err == nil {
		t.Errorf("unknown objective accepted")
	}
	if _, err := MineTopK(rel, "X", "B", true, RuleKind(9), 1, Config{}); err == nil {
		t.Errorf("bad kind accepted")
	}
	empty := relation.MustNewMemoryRelation(rel.Schema())
	if _, err := MineTopK(empty, "X", "B", true, OptimizedConfidence, 1, Config{}); err == nil {
		t.Errorf("empty relation accepted")
	}
}

func TestMineTopKFirstMatchesSingleMine(t *testing.T) {
	rel := twoClusterRelation(t, 20000)
	cfg := Config{MinSupport: 0.05, MinConfidence: 0.7, Buckets: 200, Seed: 9}
	rules, err := MineTopK(rel, "X", "B", true, OptimizedConfidence, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, conf, err := Mine(rel, "X", "B", true, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || conf == nil {
		t.Fatalf("missing rules: topk=%d single=%v", len(rules), conf)
	}
	if rules[0].Low != conf.Low || rules[0].High != conf.High || rules[0].Confidence != conf.Confidence {
		t.Errorf("top-1 differs from single optimum:\n%v\n%v", rules[0], *conf)
	}
}
