package datagen

import (
	"fmt"
	"math/rand"

	"optrule/internal/relation"
)

// PlantedRule describes a ground-truth association planted into
// generated data: tuples whose driver attribute falls inside Range get
// the Boolean target with probability InsideProb, all others with
// probability OutsideProb. Tests recover the planted range with the
// optimized-rule algorithms and check it against this specification.
type PlantedRule struct {
	Driver      string // numeric attribute name
	Target      string // Boolean attribute name
	Range       [2]float64
	InsideProb  float64
	OutsideProb float64
}

// Contains reports whether v falls inside the planted range.
func (p PlantedRule) Contains(v float64) bool {
	return v >= p.Range[0] && v <= p.Range[1]
}

// BankConfig parameterizes the bank-customer generator — the paper's
// running example (Balance, CardLoan, …).
type BankConfig struct {
	// Balance is the distribution of account balances. Default:
	// LogNormal(8, 1.2), a skewed domain spanning a few units to ~1e6.
	Balance Distribution
	// Age is the distribution of ages. Default: UniformInt{18, 90}.
	Age Distribution
	// ServiceYears is the distribution of years as a customer.
	// Default: Uniform[0, 40).
	ServiceYears Distribution
	// CardLoan plants the paper's headline rule
	// (Balance ∈ I) ⇒ (CardLoan = yes). Default plants I = [3000, 20000]
	// with inside probability 0.65 and outside probability 0.12.
	CardLoan PlantedRule
	// Mortgage plants a second rule on Age. Default I = [30, 45],
	// inside 0.5, outside 0.1.
	Mortgage PlantedRule
	// AutoWithdrawProb is the unconditional probability of the
	// AutoWithdraw attribute (no planted structure). Default 0.4.
	AutoWithdrawProb float64
}

// DefaultBankConfig returns the configuration described in the
// BankConfig field docs.
func DefaultBankConfig() BankConfig {
	return BankConfig{
		Balance:      LogNormal{Mu: 8, Sigma: 1.2},
		Age:          UniformInt{Lo: 18, Hi: 90},
		ServiceYears: Uniform{Lo: 0, Hi: 40},
		CardLoan: PlantedRule{
			Driver: "Balance", Target: "CardLoan",
			Range: [2]float64{3000, 20000}, InsideProb: 0.65, OutsideProb: 0.12,
		},
		Mortgage: PlantedRule{
			Driver: "Age", Target: "Mortgage",
			Range: [2]float64{30, 45}, InsideProb: 0.5, OutsideProb: 0.1,
		},
		AutoWithdrawProb: 0.4,
	}
}

// Bank generates bank-customer tuples with planted rules.
//
// Schema: Balance, Age, ServiceYears (numeric);
// CardLoan, Mortgage, AutoWithdraw (Boolean).
type Bank struct {
	cfg BankConfig
}

// NewBank validates cfg (zero-value fields are filled with defaults)
// and returns the generator.
func NewBank(cfg BankConfig) (*Bank, error) {
	def := DefaultBankConfig()
	if cfg.Balance == nil {
		cfg.Balance = def.Balance
	}
	if cfg.Age == nil {
		cfg.Age = def.Age
	}
	if cfg.ServiceYears == nil {
		cfg.ServiceYears = def.ServiceYears
	}
	if cfg.CardLoan == (PlantedRule{}) {
		cfg.CardLoan = def.CardLoan
	}
	if cfg.Mortgage == (PlantedRule{}) {
		cfg.Mortgage = def.Mortgage
	}
	if cfg.AutoWithdrawProb == 0 {
		cfg.AutoWithdrawProb = def.AutoWithdrawProb
	}
	for _, p := range []PlantedRule{cfg.CardLoan, cfg.Mortgage} {
		if p.Range[0] > p.Range[1] {
			return nil, fmt.Errorf("datagen: planted range %v inverted", p.Range)
		}
		if p.InsideProb < 0 || p.InsideProb > 1 || p.OutsideProb < 0 || p.OutsideProb > 1 {
			return nil, fmt.Errorf("datagen: planted probabilities out of [0,1]: %+v", p)
		}
	}
	return &Bank{cfg: cfg}, nil
}

// Config returns the (defaulted) configuration, including the planted
// ground truth.
func (b *Bank) Config() BankConfig { return b.cfg }

// Schema implements RowSource.
func (b *Bank) Schema() relation.Schema {
	return relation.Schema{
		{Name: "Balance", Kind: relation.Numeric},
		{Name: "Age", Kind: relation.Numeric},
		{Name: "ServiceYears", Kind: relation.Numeric},
		{Name: "CardLoan", Kind: relation.Boolean},
		{Name: "Mortgage", Kind: relation.Boolean},
		{Name: "AutoWithdraw", Kind: relation.Boolean},
	}
}

// Row implements RowSource.
func (b *Bank) Row(rng *rand.Rand, nums []float64, bools []bool) ([]float64, []bool) {
	balance := b.cfg.Balance.Sample(rng)
	age := b.cfg.Age.Sample(rng)
	years := b.cfg.ServiceYears.Sample(rng)

	pLoan := b.cfg.CardLoan.OutsideProb
	if b.cfg.CardLoan.Contains(balance) {
		pLoan = b.cfg.CardLoan.InsideProb
	}
	pMort := b.cfg.Mortgage.OutsideProb
	if b.cfg.Mortgage.Contains(age) {
		pMort = b.cfg.Mortgage.InsideProb
	}

	nums = append(nums, balance, age, years)
	bools = append(bools,
		rng.Float64() < pLoan,
		rng.Float64() < pMort,
		rng.Float64() < b.cfg.AutoWithdrawProb,
	)
	return nums, bools
}
