package datagen

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"optrule/internal/relation"
)

func TestDistributionsBasicRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Lo: 10, Hi: 20}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform sample %g out of [10,20)", v)
		}
	}
	ui := UniformInt{Lo: 3, Hi: 7}
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := ui.Sample(rng)
		if v < 3 || v > 7 || v != math.Trunc(v) {
			t.Fatalf("UniformInt sample %g invalid", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("UniformInt hit %d distinct values, want 5", len(seen))
	}
	ln := LogNormal{Mu: 0, Sigma: 1}
	for i := 0; i < 1000; i++ {
		if v := ln.Sample(rng); v <= 0 {
			t.Fatalf("LogNormal sample %g not positive", v)
		}
	}
	z := Zipf{S: 2, Imax: 1000, Unit: 5}
	for i := 0; i < 1000; i++ {
		v := z.Sample(rng)
		if v < 5 || v > 5*1000*1.0001 {
			t.Fatalf("Zipf sample %g out of range", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Gaussian{Mean: 100, Std: 15}
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Sample(rng)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("empirical mean %g, want ~100", mean)
	}
	if math.Abs(std-15) > 0.5 {
		t.Errorf("empirical std %g, want ~15", std)
	}
}

func TestMixtureWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Mixture{
		Components: []Distribution{Uniform{0, 1}, Uniform{100, 101}},
		Weights:    []float64{0.25, 0.75},
	}
	high := 0
	n := 20000
	for i := 0; i < n; i++ {
		if m.Sample(rng) > 50 {
			high++
		}
	}
	frac := float64(high) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("second component frequency %g, want ~0.75", frac)
	}
	// Degenerate mixture.
	if v := (Mixture{}).Sample(rng); v != 0 {
		t.Errorf("empty mixture sample = %g, want 0", v)
	}
}

func TestDistributionStrings(t *testing.T) {
	ds := []Distribution{
		Uniform{0, 1}, UniformInt{1, 5}, Gaussian{0, 1}, LogNormal{0, 1},
		Zipf{S: 2, Imax: 10, Unit: 1}, Mixture{},
	}
	for _, d := range ds {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	bank, err := NewBank(BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := MustMaterialize(bank, 500, 42)
	r2 := MustMaterialize(bank, 500, 42)
	b1, _ := r1.NumericColumn(0)
	b2, _ := r2.NumericColumn(0)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("same seed produced different data at row %d", i)
		}
	}
	r3 := MustMaterialize(bank, 500, 43)
	b3, _ := r3.NumericColumn(0)
	same := true
	for i := range b1 {
		if b1[i] != b3[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical data")
	}
}

func TestMaterializeErrors(t *testing.T) {
	bank, _ := NewBank(BankConfig{})
	if _, err := Materialize(bank, -1, 0); err == nil {
		t.Errorf("negative count accepted")
	}
}

func TestBankPlantedRuleShowsUp(t *testing.T) {
	bank, err := NewBank(BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	n := 50000
	rel := MustMaterialize(bank, n, 7)
	planted := bank.Config().CardLoan
	bal, _ := rel.NumericColumn(0)
	loan, _ := rel.BoolColumn(rel.Schema().Index("CardLoan"))
	inYes, inAll, outYes, outAll := 0, 0, 0, 0
	for i := range bal {
		if planted.Contains(bal[i]) {
			inAll++
			if loan[i] {
				inYes++
			}
		} else {
			outAll++
			if loan[i] {
				outYes++
			}
		}
	}
	if inAll == 0 || outAll == 0 {
		t.Fatalf("degenerate split: in=%d out=%d", inAll, outAll)
	}
	inConf := float64(inYes) / float64(inAll)
	outConf := float64(outYes) / float64(outAll)
	if math.Abs(inConf-planted.InsideProb) > 0.03 {
		t.Errorf("inside confidence %g, want ~%g", inConf, planted.InsideProb)
	}
	if math.Abs(outConf-planted.OutsideProb) > 0.03 {
		t.Errorf("outside confidence %g, want ~%g", outConf, planted.OutsideProb)
	}
}

func TestBankConfigValidation(t *testing.T) {
	if _, err := NewBank(BankConfig{CardLoan: PlantedRule{Range: [2]float64{5, 1}, InsideProb: 0.5, OutsideProb: 0.1}}); err == nil {
		t.Errorf("inverted planted range accepted")
	}
	if _, err := NewBank(BankConfig{CardLoan: PlantedRule{Range: [2]float64{1, 5}, InsideProb: 1.5}}); err == nil {
		t.Errorf("probability > 1 accepted")
	}
}

func TestRetailLiftsAndPremium(t *testing.T) {
	ret, err := NewRetail(DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 60000
	rel := MustMaterialize(ret, n, 9)
	s := rel.Schema()
	amount, _ := rel.NumericColumn(0)
	pizza, _ := rel.BoolColumn(s.Index("Pizza"))
	coke, _ := rel.BoolColumn(s.Index("Coke"))
	wine, _ := rel.BoolColumn(s.Index("Wine"))

	// Lift: P(Coke | Pizza) should exceed P(Coke | !Pizza).
	cokeGivenPizza, pizzaCount := 0, 0
	cokeGivenNot, notCount := 0, 0
	for i := 0; i < n; i++ {
		if pizza[i] {
			pizzaCount++
			if coke[i] {
				cokeGivenPizza++
			}
		} else {
			notCount++
			if coke[i] {
				cokeGivenNot++
			}
		}
	}
	pc := float64(cokeGivenPizza) / float64(pizzaCount)
	pn := float64(cokeGivenNot) / float64(notCount)
	if pc <= pn+0.1 {
		t.Errorf("lift missing: P(Coke|Pizza)=%g vs P(Coke|!Pizza)=%g", pc, pn)
	}

	// Premium: wine rate inside the premium amount range should be much
	// higher than outside.
	cfg := ret.Config()
	inYes, inAll, outYes, outAll := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		if amount[i] >= cfg.PremiumRange[0] && amount[i] <= cfg.PremiumRange[1] {
			inAll++
			if wine[i] {
				inYes++
			}
		} else {
			outAll++
			if wine[i] {
				outYes++
			}
		}
	}
	if inAll < 100 {
		t.Fatalf("premium range too rare in generated data: %d tuples", inAll)
	}
	if float64(inYes)/float64(inAll) < 2*float64(outYes)/float64(outAll) {
		t.Errorf("premium association too weak: in=%g out=%g",
			float64(inYes)/float64(inAll), float64(outYes)/float64(outAll))
	}

	// ItemCount must equal the number of true item flags.
	count, _ := rel.NumericColumn(1)
	itemCols := make([][]bool, 0)
	for _, bi := range s.BooleanIndices() {
		col, _ := rel.BoolColumn(bi)
		itemCols = append(itemCols, col)
	}
	for i := 0; i < 200; i++ {
		want := 0
		for _, col := range itemCols {
			if col[i] {
				want++
			}
		}
		if int(count[i]) != want {
			t.Fatalf("row %d: ItemCount=%g, actual items=%d", i, count[i], want)
		}
	}
}

func TestRetailConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  RetailConfig
	}{
		{"no items", RetailConfig{Amount: Uniform{0, 1}}},
		{"bad prob", RetailConfig{Items: []Item{{"A", 1.2}}, Amount: Uniform{0, 1}}},
		{"dup item", RetailConfig{Items: []Item{{"A", 0.5}, {"A", 0.5}}, Amount: Uniform{0, 1}}},
		{"unknown lift src", RetailConfig{Items: []Item{{"A", 0.5}}, Lifts: []Lift{{"X", "A", 2}}, Amount: Uniform{0, 1}}},
		{"unknown lift dst", RetailConfig{Items: []Item{{"A", 0.5}}, Lifts: []Lift{{"A", "X", 2}}, Amount: Uniform{0, 1}}},
		{"backward lift", RetailConfig{Items: []Item{{"A", 0.5}, {"B", 0.5}}, Lifts: []Lift{{"B", "A", 2}}, Amount: Uniform{0, 1}}},
		{"unknown premium", RetailConfig{Items: []Item{{"A", 0.5}}, PremiumItem: "X", Amount: Uniform{0, 1}}},
		{"nil amount", RetailConfig{Items: []Item{{"A", 0.5}}}},
	}
	for _, c := range cases {
		if _, err := NewRetail(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPerfShapeMatchesPaper(t *testing.T) {
	ps := PaperPerfShape()
	s := ps.Schema()
	if len(s.NumericIndices()) != 8 || len(s.BooleanIndices()) != 8 {
		t.Fatalf("paper shape should be 8 numeric + 8 boolean, got %d + %d",
			len(s.NumericIndices()), len(s.BooleanIndices()))
	}
	rel := MustMaterialize(ps, 1000, 5)
	if rel.NumTuples() != 1000 {
		t.Fatalf("NumTuples = %d", rel.NumTuples())
	}
	// Boolean biases should be spread: B0 rare, B7 common.
	b0, _ := rel.BoolColumn(s.Index("B0"))
	b7, _ := rel.BoolColumn(s.Index("B7"))
	c0, c7 := 0, 0
	for i := range b0 {
		if b0[i] {
			c0++
		}
		if b7[i] {
			c7++
		}
	}
	if c0 >= c7 {
		t.Errorf("expected B0 (p=1/9) rarer than B7 (p=8/9): %d vs %d", c0, c7)
	}
}

func TestPerfShapeValidation(t *testing.T) {
	if _, err := NewPerfShape(0, 3, nil); err == nil {
		t.Errorf("zero numeric attributes accepted")
	}
	if _, err := NewPerfShape(1, -1, nil); err == nil {
		t.Errorf("negative boolean attributes accepted")
	}
}

func TestCorrelatedShape(t *testing.T) {
	planted := PlantedRule{Range: [2]float64{100, 200}, InsideProb: 0.9, OutsideProb: 0.05}
	cs, err := NewCorrelatedShape(2, 2, Uniform{0, 1000}, planted)
	if err != nil {
		t.Fatal(err)
	}
	rel := MustMaterialize(cs, 30000, 17)
	n0, _ := rel.NumericColumn(0)
	b0, _ := rel.BoolColumn(rel.Schema().Index("B0"))
	inYes, inAll := 0, 0
	for i := range n0 {
		if planted.Contains(n0[i]) {
			inAll++
			if b0[i] {
				inYes++
			}
		}
	}
	if inAll < 1000 {
		t.Fatalf("planted range too rare: %d", inAll)
	}
	if got := float64(inYes) / float64(inAll); math.Abs(got-0.9) > 0.05 {
		t.Errorf("inside confidence %g, want ~0.9", got)
	}
	if _, err := NewCorrelatedShape(1, 0, nil, planted); err == nil {
		t.Errorf("no boolean attribute accepted")
	}
	bad := planted
	bad.Range = [2]float64{5, 1}
	if _, err := NewCorrelatedShape(1, 1, nil, bad); err == nil {
		t.Errorf("inverted planted range accepted")
	}
}

func TestWriteDiskRoundTrip(t *testing.T) {
	bank, _ := NewBank(BankConfig{})
	path := filepath.Join(t.TempDir(), "bank.opr")
	if err := WriteDisk(path, bank, 1234, 21); err != nil {
		t.Fatal(err)
	}
	dr, err := relation.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if dr.NumTuples() != 1234 {
		t.Fatalf("NumTuples = %d, want 1234", dr.NumTuples())
	}
	// Disk contents must equal the in-memory materialization with the
	// same seed.
	mem := MustMaterialize(bank, 1234, 21)
	want, _ := mem.NumericColumn(0)
	at := 0
	err = dr.Scan(relation.ColumnSet{Numeric: []int{0}}, func(b *relation.Batch) error {
		for i := 0; i < b.Len; i++ {
			if b.Numeric[0][i] != want[at] {
				t.Fatalf("row %d differs between disk and memory", at)
			}
			at++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDisk(filepath.Join(t.TempDir(), "x.opr"), bank, -1, 0); err == nil {
		t.Errorf("negative count accepted")
	}
}
