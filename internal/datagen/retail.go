package datagen

import (
	"fmt"
	"math/rand"

	"optrule/internal/relation"
)

// RetailConfig parameterizes the basket-data generator used by the
// conjunctive-rule examples (Section 4.3 of the paper: rules of the
// form (A ∈ [v1,v2]) ∧ C1 ⇒ C2).
type RetailConfig struct {
	// Items are the Boolean item attributes and their unconditional
	// purchase probabilities.
	Items []Item
	// Lifts boost the probability of item Then when item When is in the
	// basket, multiplying the base probability (capped at 1).
	Lifts []Lift
	// AmountSpent plants a numeric association: baskets whose total
	// amount falls in PremiumRange buy the premium item with
	// PremiumProb instead of its base probability.
	Amount       Distribution
	PremiumItem  string
	PremiumRange [2]float64
	PremiumProb  float64
}

// Item is one Boolean basket attribute.
type Item struct {
	Name string
	Prob float64
}

// Lift is a pairwise item correlation.
type Lift struct {
	When, Then string
	Factor     float64
}

// DefaultRetailConfig returns a basket workload in the spirit of the
// paper's introduction: Pizza/Coke/Potato correlations plus an Amount
// attribute that drives purchases of a premium item.
func DefaultRetailConfig() RetailConfig {
	return RetailConfig{
		Items: []Item{
			{Name: "Pizza", Prob: 0.30},
			{Name: "Coke", Prob: 0.35},
			{Name: "Beer", Prob: 0.20},
			{Name: "Potato", Prob: 0.25},
			{Name: "Wine", Prob: 0.10},
		},
		Lifts: []Lift{
			{When: "Pizza", Then: "Coke", Factor: 2.0},
			{When: "Coke", Then: "Potato", Factor: 1.8},
			{When: "Beer", Then: "Potato", Factor: 1.5},
		},
		Amount:       LogNormal{Mu: 3.5, Sigma: 0.8},
		PremiumItem:  "Wine",
		PremiumRange: [2]float64{60, 250},
		PremiumProb:  0.55,
	}
}

// Retail generates basket tuples.
//
// Schema: Amount, ItemCount (numeric); one Boolean attribute per item.
type Retail struct {
	cfg      RetailConfig
	itemIdx  map[string]int
	premIdx  int
	liftSrc  []int
	liftDst  []int
	liftFact []float64
}

// NewRetail validates cfg and returns the generator.
func NewRetail(cfg RetailConfig) (*Retail, error) {
	if len(cfg.Items) == 0 {
		return nil, fmt.Errorf("datagen: retail config needs at least one item")
	}
	r := &Retail{cfg: cfg, itemIdx: make(map[string]int, len(cfg.Items)), premIdx: -1}
	for i, it := range cfg.Items {
		if it.Prob < 0 || it.Prob > 1 {
			return nil, fmt.Errorf("datagen: item %q probability %g out of [0,1]", it.Name, it.Prob)
		}
		if _, dup := r.itemIdx[it.Name]; dup {
			return nil, fmt.Errorf("datagen: duplicate item %q", it.Name)
		}
		r.itemIdx[it.Name] = i
	}
	for _, l := range cfg.Lifts {
		src, ok := r.itemIdx[l.When]
		if !ok {
			return nil, fmt.Errorf("datagen: lift references unknown item %q", l.When)
		}
		dst, ok := r.itemIdx[l.Then]
		if !ok {
			return nil, fmt.Errorf("datagen: lift references unknown item %q", l.Then)
		}
		if dst <= src {
			return nil, fmt.Errorf("datagen: lift %q->%q must point forward in item order", l.When, l.Then)
		}
		r.liftSrc = append(r.liftSrc, src)
		r.liftDst = append(r.liftDst, dst)
		r.liftFact = append(r.liftFact, l.Factor)
	}
	if cfg.PremiumItem != "" {
		idx, ok := r.itemIdx[cfg.PremiumItem]
		if !ok {
			return nil, fmt.Errorf("datagen: premium item %q not in item list", cfg.PremiumItem)
		}
		r.premIdx = idx
	}
	if cfg.Amount == nil {
		return nil, fmt.Errorf("datagen: retail config needs an Amount distribution")
	}
	return r, nil
}

// Config returns the generator's configuration.
func (r *Retail) Config() RetailConfig { return r.cfg }

// Schema implements RowSource.
func (r *Retail) Schema() relation.Schema {
	s := relation.Schema{
		{Name: "Amount", Kind: relation.Numeric},
		{Name: "ItemCount", Kind: relation.Numeric},
	}
	for _, it := range r.cfg.Items {
		s = append(s, relation.Attribute{Name: it.Name, Kind: relation.Boolean})
	}
	return s
}

// Row implements RowSource.
func (r *Retail) Row(rng *rand.Rand, nums []float64, bools []bool) ([]float64, []bool) {
	amount := r.cfg.Amount.Sample(rng)
	basket := make([]bool, len(r.cfg.Items))
	probs := make([]float64, len(r.cfg.Items))
	for i, it := range r.cfg.Items {
		probs[i] = it.Prob
	}
	if r.premIdx >= 0 && amount >= r.cfg.PremiumRange[0] && amount <= r.cfg.PremiumRange[1] {
		probs[r.premIdx] = r.cfg.PremiumProb
	}
	// Items are decided in order; lifts only point forward, so each
	// item's final probability is known when it is decided.
	for i := range basket {
		basket[i] = rng.Float64() < minf(probs[i], 1)
		if basket[i] {
			for k := range r.liftSrc {
				if r.liftSrc[k] == i {
					probs[r.liftDst[k]] *= r.liftFact[k]
				}
			}
		}
	}
	count := 0
	for _, b := range basket {
		if b {
			count++
		}
	}
	nums = append(nums, amount, float64(count))
	bools = append(bools, basket...)
	return nums, bools
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
