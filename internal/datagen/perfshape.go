package datagen

import (
	"fmt"
	"math/rand"

	"optrule/internal/relation"
)

// PerfShape reproduces the data shape of the paper's performance
// evaluation (Section 6.1): "randomly generated test data with eight
// numeric attributes and eight Boolean attributes, that is, with 72
// bytes per tuple". Numeric values are uniform over a large domain so
// that the number of finest buckets is huge — the hard case motivating
// Algorithm 3.1 — and Boolean attributes are independent coin flips
// with varying biases.
type PerfShape struct {
	NumNumeric int
	NumBool    int
	Domain     Distribution
}

// NewPerfShape returns a generator with numNumeric numeric and numBool
// Boolean attributes. A nil domain defaults to Uniform[0, 1e8), mimicking
// balances of millions of customers ("the domain of A may range from
// ¢0 to ~10^10", Example 2.4).
func NewPerfShape(numNumeric, numBool int, domain Distribution) (*PerfShape, error) {
	if numNumeric < 1 {
		return nil, fmt.Errorf("datagen: need at least one numeric attribute, got %d", numNumeric)
	}
	if numBool < 0 {
		return nil, fmt.Errorf("datagen: negative Boolean attribute count %d", numBool)
	}
	if domain == nil {
		domain = Uniform{Lo: 0, Hi: 1e8}
	}
	return &PerfShape{NumNumeric: numNumeric, NumBool: numBool, Domain: domain}, nil
}

// PaperPerfShape returns the exact 8-numeric, 8-Boolean shape used in
// the paper's Figure 9 experiment.
func PaperPerfShape() *PerfShape {
	ps, err := NewPerfShape(8, 8, nil)
	if err != nil {
		panic(err)
	}
	return ps
}

// Schema implements RowSource.
func (p *PerfShape) Schema() relation.Schema {
	s := make(relation.Schema, 0, p.NumNumeric+p.NumBool)
	for i := 0; i < p.NumNumeric; i++ {
		s = append(s, relation.Attribute{Name: fmt.Sprintf("N%d", i), Kind: relation.Numeric})
	}
	for i := 0; i < p.NumBool; i++ {
		s = append(s, relation.Attribute{Name: fmt.Sprintf("B%d", i), Kind: relation.Boolean})
	}
	return s
}

// Row implements RowSource. Boolean attribute i is true with
// probability (i+1)/(NumBool+1), giving the mining layer a spread of
// confidence baselines to work against.
func (p *PerfShape) Row(rng *rand.Rand, nums []float64, bools []bool) ([]float64, []bool) {
	for i := 0; i < p.NumNumeric; i++ {
		nums = append(nums, p.Domain.Sample(rng))
	}
	for i := 0; i < p.NumBool; i++ {
		bools = append(bools, rng.Float64() < float64(i+1)/float64(p.NumBool+1))
	}
	return nums, bools
}

// CorrelatedShape is a variant of PerfShape in which Boolean attribute
// B0 depends on numeric attribute N0 through a planted range, so that
// optimized-rule queries on generated data have a meaningful answer.
type CorrelatedShape struct {
	*PerfShape
	Planted PlantedRule
}

// NewCorrelatedShape plants rule (N0 ∈ planted.Range) ⇒ B0 on top of a
// PerfShape.
func NewCorrelatedShape(numNumeric, numBool int, domain Distribution, planted PlantedRule) (*CorrelatedShape, error) {
	if numBool < 1 {
		return nil, fmt.Errorf("datagen: correlated shape needs at least one Boolean attribute")
	}
	ps, err := NewPerfShape(numNumeric, numBool, domain)
	if err != nil {
		return nil, err
	}
	if planted.Range[0] > planted.Range[1] {
		return nil, fmt.Errorf("datagen: planted range %v inverted", planted.Range)
	}
	return &CorrelatedShape{PerfShape: ps, Planted: planted}, nil
}

// Row implements RowSource.
func (c *CorrelatedShape) Row(rng *rand.Rand, nums []float64, bools []bool) ([]float64, []bool) {
	nums, bools = c.PerfShape.Row(rng, nums, bools)
	p := c.Planted.OutsideProb
	if c.Planted.Contains(nums[0]) {
		p = c.Planted.InsideProb
	}
	bools[0] = rng.Float64() < p
	return nums, bools
}
