package datagen

import (
	"fmt"
	"math/rand"

	"optrule/internal/relation"
)

// RowSource produces tuples for a fixed schema. Implementations must be
// deterministic given the rng stream, so that the same seed regenerates
// the same relation (tests and experiments depend on this).
type RowSource interface {
	// Schema returns the schema of produced tuples.
	Schema() relation.Schema
	// Row appends one tuple's numeric and Boolean values to the provided
	// buffers (which may be reused between calls) and returns them.
	Row(rng *rand.Rand, nums []float64, bools []bool) ([]float64, []bool)
}

// Materialize builds an in-memory relation of n tuples from src.
func Materialize(src RowSource, n int, seed int64) (*relation.MemoryRelation, error) {
	if n < 0 {
		return nil, fmt.Errorf("datagen: negative tuple count %d", n)
	}
	rel, err := relation.NewMemoryRelation(src.Schema())
	if err != nil {
		return nil, err
	}
	rel.Grow(n)
	rng := rand.New(rand.NewSource(seed))
	var nums []float64
	var bools []bool
	for i := 0; i < n; i++ {
		nums, bools = src.Row(rng, nums[:0], bools[:0])
		if err := rel.Append(nums, bools); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// MaterializeRange builds an in-memory relation holding rows
// [skip, skip+n) of the stream Materialize(src, skip+n, seed) would
// produce. Every generator draws from one sequential rng, so the
// first skip rows of a longer generation are bit-identical to a
// skip-row generation with the same seed — which makes the returned
// tail exactly the rows an append must add to a relation already
// holding the first skip rows of the same (kind, seed) stream.
func MaterializeRange(src RowSource, seed int64, skip, n int) (*relation.MemoryRelation, error) {
	if skip < 0 {
		return nil, fmt.Errorf("datagen: negative skip %d", skip)
	}
	if n < 0 {
		return nil, fmt.Errorf("datagen: negative tuple count %d", n)
	}
	rel, err := relation.NewMemoryRelation(src.Schema())
	if err != nil {
		return nil, err
	}
	rel.Grow(n)
	rng := rand.New(rand.NewSource(seed))
	var nums []float64
	var bools []bool
	for i := 0; i < skip+n; i++ {
		nums, bools = src.Row(rng, nums[:0], bools[:0])
		if i < skip {
			continue // burn the prefix; the rng stream is what matters
		}
		if err := rel.Append(nums, bools); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// MustMaterialize is Materialize that panics on error, for tests and
// examples.
func MustMaterialize(src RowSource, n int, seed int64) *relation.MemoryRelation {
	rel, err := Materialize(src, n, seed)
	if err != nil {
		panic(err)
	}
	return rel
}

// WriteDisk streams n tuples from src into the binary disk format at
// path, without holding the relation in memory — this is how the
// larger-than-memory experiment inputs are produced. It writes the
// current default format (v2 column-major block groups); use
// WriteDiskFormat to pick the version explicitly.
func WriteDisk(path string, src RowSource, n int, seed int64) error {
	return WriteDiskFormat(path, src, n, seed, relation.DiskFormatV2)
}

// WriteDiskFormat is WriteDisk with an explicit on-disk format version
// (relation.DiskFormatV1, DiskFormatV2, or DiskFormatV3).
func WriteDiskFormat(path string, src RowSource, n int, seed int64, version int) error {
	if n < 0 {
		return fmt.Errorf("datagen: negative tuple count %d", n)
	}
	dw, err := relation.NewDiskWriterFormat(path, src.Schema(), version)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	var nums []float64
	var bools []bool
	for i := 0; i < n; i++ {
		nums, bools = src.Row(rng, nums[:0], bools[:0])
		if err := dw.Append(nums, bools); err != nil {
			dw.Discard()
			return err
		}
	}
	return dw.Close()
}

// WriteSharded streams n tuples from src into a sharded relation
// rooted at manifestPath, split contiguously across the given shard
// count with shard files in the given format version (0 selects v2).
// The tuple stream is identical to WriteDiskFormat with the same
// (src, n, seed), so a sharded relation and its single-file twin hold
// the same rows in the same global order — the property the sharded
// differential tests pin.
func WriteSharded(manifestPath string, src RowSource, n int, seed int64, shards, version int) error {
	if n < 0 {
		return fmt.Errorf("datagen: negative tuple count %d", n)
	}
	sw, err := relation.NewShardedWriter(manifestPath, src.Schema(), relation.ShardedWriterOptions{
		Shards: shards, TotalRows: n, Format: version,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	var nums []float64
	var bools []bool
	for i := 0; i < n; i++ {
		nums, bools = src.Row(rng, nums[:0], bools[:0])
		if err := sw.Append(nums, bools); err != nil {
			return err
		}
	}
	return sw.Close()
}
