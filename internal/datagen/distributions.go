// Package datagen generates the synthetic workloads used by the tests,
// examples, and benchmark harness. It provides a small distribution
// toolkit, a bank-customers generator with planted ground-truth ranges
// (the paper's motivating scenario), a retail-basket generator for the
// conjunctive-rule extension, and the "performance shape" generator
// matching the paper's evaluation data: 8 numeric + 8 Boolean
// attributes of random values (Section 6.1).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution draws float64 values.
type Distribution interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
	// String describes the distribution for documentation output.
	String() string
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g)", u.Lo, u.Hi) }

// UniformInt draws integer-valued floats uniformly from {Lo, …, Hi}.
type UniformInt struct {
	Lo, Hi int
}

// Sample implements Distribution.
func (u UniformInt) Sample(rng *rand.Rand) float64 {
	return float64(u.Lo + rng.Intn(u.Hi-u.Lo+1))
}

func (u UniformInt) String() string { return fmt.Sprintf("UniformInt{%d..%d}", u.Lo, u.Hi) }

// Gaussian is the normal distribution N(Mean, Std²).
type Gaussian struct {
	Mean, Std float64
}

// Sample implements Distribution.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mean + g.Std*rng.NormFloat64()
}

func (g Gaussian) String() string { return fmt.Sprintf("N(%g,%g²)", g.Mean, g.Std) }

// LogNormal draws exp(N(Mu, Sigma²)) — the paper's canonical example of
// a numeric attribute with a huge, skewed domain (account balances).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

func (l LogNormal) String() string { return fmt.Sprintf("LogNormal(%g,%g)", l.Mu, l.Sigma) }

// Zipf draws from a Zipf distribution with parameters (s, v, imax),
// scaled by Unit. Useful for purchase-amount style attributes.
type Zipf struct {
	S    float64 // exponent, > 1
	V    float64 // value offset, >= 1
	Imax uint64  // maximum rank
	Unit float64 // multiplier applied to the rank
}

// Sample implements Distribution. Note: each Sample constructs a value
// from the rank distribution directly (inverse transform on a truncated
// power law) rather than keeping per-rng state, so one Zipf value is
// O(1) and the type is safe for concurrent use with distinct rngs.
func (z Zipf) Sample(rng *rand.Rand) float64 {
	// Inverse-transform sampling on P(rank > x) ∝ x^{1−s}.
	s := z.S
	if s <= 1 {
		s = 1.0001
	}
	u := rng.Float64()
	maxR := float64(z.Imax)
	if maxR < 1 {
		maxR = 1
	}
	// Truncated Pareto inverse CDF on [1, maxR].
	a := s - 1
	x := math.Pow(1-u*(1-math.Pow(maxR, -a)), -1/a)
	unit := z.Unit
	if unit == 0 {
		unit = 1
	}
	return x * unit
}

func (z Zipf) String() string {
	return fmt.Sprintf("Zipf(s=%g,imax=%d)x%g", z.S, z.Imax, z.Unit)
}

// Mixture draws from one of several component distributions chosen by
// weight — e.g. a bimodal balance distribution with a mass of ordinary
// customers and a mass of wealthy ones.
type Mixture struct {
	Components []Distribution
	Weights    []float64
}

// Sample implements Distribution.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	if len(m.Components) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

func (m Mixture) String() string { return fmt.Sprintf("Mixture(%d components)", len(m.Components)) }
