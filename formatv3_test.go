package optrule

import (
	"path/filepath"
	"reflect"
	"testing"

	"optrule/internal/datagen"
	"optrule/internal/relation"
)

// writeV2V3 writes the same n tuples of src (same seed, hence
// bit-identical data) in the v2 and v3 disk formats and opens them.
func writeV2V3(t *testing.T, src datagen.RowSource, n int, seed int64) (v2, v3 *DiskRelation) {
	t.Helper()
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "rel_v2.opr")
	v3Path := filepath.Join(dir, "rel_v3.opr")
	if err := datagen.WriteDiskFormat(v2Path, src, n, seed, relation.DiskFormatV2); err != nil {
		t.Fatal(err)
	}
	if err := datagen.WriteDiskFormat(v3Path, src, n, seed, relation.DiskFormatV3); err != nil {
		t.Fatal(err)
	}
	var err error
	if v2, err = OpenDisk(v2Path); err != nil {
		t.Fatal(err)
	}
	if v3, err = OpenDisk(v3Path); err != nil {
		t.Fatal(err)
	}
	return v2, v3
}

// TestMineAllV3MatchesV2 is the differential acceptance test of the
// compressed format: the same data mined from a v2 file and a v3
// compressed file must yield rule-for-rule identical MineAll output —
// same rules, same order, same statistics to the last bit — on both
// the bank and the retail workload.
func TestMineAllV3MatchesV2(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retail, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		src  datagen.RowSource
	}{{"bank", bank}, {"retail", retail}} {
		t.Run(tc.name, func(t *testing.T) {
			v2, v3 := writeV2V3(t, tc.src, 40000, 1)
			cfg := Config{Buckets: 300, Seed: 7}
			res2, err := MineAll(v2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res3, err := MineAll(v3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res2.Rules) == 0 {
				t.Fatalf("v2 mined no rules; differential test is vacuous")
			}
			if len(res2.Rules) != len(res3.Rules) {
				t.Fatalf("v2 mined %d rules, v3 mined %d", len(res2.Rules), len(res3.Rules))
			}
			for i := range res2.Rules {
				if res2.Rules[i] != res3.Rules[i] {
					t.Errorf("rule %d differs between formats:\n  v2: %v\n  v3: %v", i, res2.Rules[i], res3.Rules[i])
				}
			}
			if v3.BytesRead() >= v2.BytesRead() {
				t.Errorf("v3 mining read %d bytes, v2 read %d; compression saved nothing",
					v3.BytesRead(), v2.BytesRead())
			}
		})
	}
}

// TestMineAll2DV3MatchesV2 extends the differential check to the 2-D
// engine: pair grids, rectangle rules, and region rules must be
// identical across the two formats.
func TestMineAll2DV3MatchesV2(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v2, v3 := writeV2V3(t, bank, 30000, 5)
	cfg := Config{Seed: 9}
	opt := Options2D{
		Objective: "CardLoan", ObjectiveValue: true,
		Regions:  []RegionClass{XMonotoneClass},
		GridSide: 32,
	}
	res2, err := MineAll2D(v2, opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := MineAll2D(v3, opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pairs == 0 {
		t.Fatalf("v2 mined no pairs; differential test is vacuous")
	}
	if !reflect.DeepEqual(res2.Rules, res3.Rules) {
		t.Errorf("2-D rectangle rules differ between formats:\n  v2: %v\n  v3: %v", res2.Rules, res3.Rules)
	}
	if !reflect.DeepEqual(res2.Regions, res3.Regions) {
		t.Errorf("2-D region rules differ between formats:\n  v2: %v\n  v3: %v", res2.Regions, res3.Regions)
	}
}

// TestMineV3TargetedQueriesMatchV2 checks the targeted path (Mine with
// a conjunctive condition), which exercises filtered counting — and
// with it the zone-map filter pushdown — over the v3 format.
func TestMineV3TargetedQueriesMatchV2(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v2, v3 := writeV2V3(t, bank, 30000, 4)
	cfg := Config{Buckets: 200, Seed: 11, MinSupport: 0.05, MinConfidence: 0.55}
	conds := []Condition{{Attr: "AutoWithdraw", Value: true}}
	sup2, conf2, err := Mine(v2, "Balance", "CardLoan", true, conds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sup3, conf3, err := Mine(v3, "Balance", "CardLoan", true, conds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b *Rule) {
		if (a == nil) != (b == nil) {
			t.Fatalf("%s rule: v2=%v v3=%v", name, a, b)
		}
		if a != nil && *a != *b {
			t.Errorf("%s rule differs between formats:\n  v2: %v\n  v3: %v", name, *a, *b)
		}
	}
	check("support", sup2, sup3)
	check("confidence", conf2, conf3)
}

// TestSessionBatchV3MatchesV2 runs one heterogeneous session batch —
// 1-D rules, a filtered conjunctive query, top-k, an average-operator
// range, and all 2-D pairs — over both formats and requires every
// answer to match field for field. This is the shape that exercises
// the general (vectorized) counting kernel rather than the homogeneous
// fast path.
func TestSessionBatchV3MatchesV2(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v2, v3 := writeV2V3(t, bank, 30000, 6)
	cfg := Config{Buckets: 200, Seed: 13}
	batch := []Query{
		{Op: OpRules},
		{Op: OpConjunctive, Numeric: "Balance",
			Objectives: []Condition{{Attr: "CardLoan", Value: true}},
			Conditions: []Condition{{Attr: "AutoWithdraw", Value: true}}},
		{Op: OpTopK, Numeric: "ServiceYears", Objective: "CardLoan", ObjectiveValue: true, K: 3},
		{Op: OpAverage, Numeric: "Age", Target: "Balance", MinSupport: 0.1},
		{Op: OpRules2D, Objective: "CardLoan", ObjectiveValue: true, GridSide: 24},
	}
	run := func(rel Relation) []Answer {
		s, err := NewSession(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		answers, err := s.ExecuteBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		return answers
	}
	a2 := run(v2)
	a3 := run(v3)
	if len(a2) != len(a3) {
		t.Fatalf("answer counts differ: v2=%d v3=%d", len(a2), len(a3))
	}
	for i := range a2 {
		if a2[i].Err != nil || a3[i].Err != nil {
			t.Fatalf("query %d errored: v2=%v v3=%v", i, a2[i].Err, a3[i].Err)
		}
		if len(a2[i].Rules) == 0 && len(a2[i].Rules2D) == 0 && a2[i].Range == nil {
			t.Fatalf("query %d produced nothing on v2; differential test is vacuous", i)
		}
		if !reflect.DeepEqual(a2[i], a3[i]) {
			t.Errorf("answer %d differs between formats:\n  v2: %+v\n  v3: %+v", i, a2[i], a3[i])
		}
	}
}

// TestMineAllV3TwoScanInvariant pins that the fused two-scan pipeline
// survives the compressed format: MineAll over a v3 relation issues
// exactly one sampling scan plus one counting scan.
func TestMineAllV3TwoScanInvariant(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, v3 := writeV2V3(t, bank, 20000, 2)
	counting := &relation.CountingRelation{R: v3}
	res, err := MineAll(counting, Config{Buckets: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatalf("mined no rules")
	}
	if counting.Scans != 2 {
		t.Errorf("MineAll over v3 issued %d scans, want exactly 2 (sampling + counting)", counting.Scans)
	}
}

// TestMineAllShardedV3MatchesSingle pins that a sharded relation whose
// shards are v3 files mines rule-for-rule identically to the same
// tuple stream in one v3 file.
func TestMineAllShardedV3MatchesSingle(t *testing.T) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const n, seed = 30000, 8
	single := filepath.Join(dir, "single.opr")
	manifest := filepath.Join(dir, "sharded.oprs")
	if err := datagen.WriteDiskFormat(single, bank, n, seed, relation.DiskFormatV3); err != nil {
		t.Fatal(err)
	}
	if err := datagen.WriteSharded(manifest, bank, n, seed, 4, relation.DiskFormatV3); err != nil {
		t.Fatal(err)
	}
	one, err := OpenDisk(single)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := relation.OpenSharded(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	cfg := Config{Buckets: 250, Seed: 17}
	resOne, err := MineAll(one, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resSharded, err := MineAll(sharded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resOne.Rules) == 0 {
		t.Fatalf("single-file v3 mined no rules; differential test is vacuous")
	}
	if !reflect.DeepEqual(resOne.Rules, resSharded.Rules) {
		t.Errorf("sharded v3 mining differs from single-file v3:\n  single: %v\n  sharded: %v",
			resOne.Rules, resSharded.Rules)
	}
}

// TestConvertDiskClustered pins the public clustering surface: the
// clustered file holds the same tuple multiset sorted by the cluster
// column, exact-domain mining is bit-identical across the two row
// orders, and a conditioned query whose filter is a band function of
// the cluster column reads fewer physical bytes on the clustered
// layout (the zone maps partition instead of overlap).
func TestConvertDiskClustered(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.opr")
	schema := Schema{
		{Name: "Level", Kind: Numeric},
		{Name: "Hot", Kind: Boolean},
		{Name: "Hit", Kind: Boolean},
	}
	dw, err := NewDiskWriterV3(plainPath, schema, 512)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		lvl := float64((i * 7919) % 40) // 40 distinct values, shuffled order
		hot := lvl >= 30
		hit := hot && i%3 != 0 || !hot && i%8 == 0
		if err := dw.Append([]float64{lvl}, []bool{hot, hit}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	clPath := filepath.Join(dir, "clustered.opr")
	if err := ConvertDiskClustered(plainPath, clPath, DiskFormatV3, 0); err != nil {
		t.Fatal(err)
	}
	plain, err := OpenDisk(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	clustered, err := OpenDisk(clPath)
	if err != nil {
		t.Fatal(err)
	}
	defer clustered.Close()
	if clustered.NumTuples() != n {
		t.Fatalf("clustered file has %d tuples, want %d", clustered.NumTuples(), n)
	}

	// Exact domains (40 distinct Level values) make boundaries a
	// function of the value set, not the row order: identical rules.
	cfg := Config{Buckets: 64, Seed: 5, ExactDomainLimit: 64}
	resPlain, err := MineAll(plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resClustered, err := MineAll(clustered, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resPlain.Rules) == 0 {
		t.Fatalf("no rules mined; differential test is vacuous")
	}
	if !reflect.DeepEqual(resPlain.Rules, resClustered.Rules) {
		t.Errorf("exact-domain rules differ between row orders:\n  plain: %v\n  clustered: %v",
			resPlain.Rules, resClustered.Rules)
	}

	// The Hot filter is constant outside the clustered band: the
	// conditioned query must read fewer physical bytes after clustering.
	cond := []Condition{{Attr: "Hot", Value: true}}
	plain.ResetBytesRead()
	if _, _, err := Mine(plain, "Level", "Hit", true, cond, cfg); err != nil {
		t.Fatal(err)
	}
	clustered.ResetBytesRead()
	if _, _, err := Mine(clustered, "Level", "Hit", true, cond, cfg); err != nil {
		t.Fatal(err)
	}
	if cb, pb := clustered.BytesRead(), plain.BytesRead(); cb >= pb {
		t.Errorf("conditioned query read %d bytes clustered vs %d unclustered; clustering saved nothing", cb, pb)
	}
}
