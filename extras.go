package optrule

import (
	"io"

	"optrule/internal/miner"
)

// Profile is the per-bucket confidence landscape of one (numeric,
// Boolean) attribute pair, for inspection and plotting.
type Profile = miner.Profile

// ProfileBucket is one bucket of a Profile.
type ProfileBucket = miner.ProfileBucket

// Verification holds the exactly recomputed statistics of a rule.
type Verification = miner.Verification

// BuildProfile computes the confidence-by-bucket profile of one
// attribute pair with the given display resolution.
func BuildProfile(rel Relation, numeric, objective string, value bool, buckets int, cfg Config) (*Profile, error) {
	return miner.BuildProfile(rel, numeric, objective, value, buckets, cfg)
}

// RenderProfile writes an ASCII bar chart of a profile to w, optionally
// highlighting the buckets covered by a rule's range.
func RenderProfile(w io.Writer, p *Profile, rule *Rule) {
	if rule != nil {
		p.Render(w, rule.Low, rule.High, true)
		return
	}
	p.Render(w, 0, 0, false)
}

// Verify rescans the relation and recomputes a mined rule's support,
// confidence, and baseline exactly. Mining is bucket-approximate
// (within the §3.4 bounds); Verify is exact, so audited numbers can be
// reported next to each discovered rule. Pass the same conditions used
// at mining time, if any.
func Verify(rel Relation, rule Rule, conds []Condition) (Verification, error) {
	return miner.Verify(rel, rule, conds)
}

// MineValues mines both optimized rules directly from parallel slices
// without constructing a relation: values[i] is the numeric attribute
// of tuple i and hits[i] whether it meets the objective. Rules are
// exact (finest buckets). If values is already sorted, no sorting
// happens and the computation is linear — the paper's headline
// complexity for sorted data.
func MineValues(values []float64, hits []bool, minSupport, minConfidence float64,
	numericName, objectiveName string) (supportRule, confidenceRule *Rule, err error) {
	return miner.MineValues(values, hits, minSupport, minConfidence, numericName, objectiveName)
}
