// Package optrule mines optimized association rules for numeric
// attributes, reproducing Fukuda, Morimoto, Morishita and Tokuyama,
// "Mining Optimized Association Rules for Numeric Attributes"
// (PODS 1996; JCSS 58(1), 1999).
//
// Given a relation with numeric and Boolean attributes, the library
// discovers rules of the form
//
//	(Balance ∈ [v1, v2]) ⇒ (CardLoan = yes)
//
// where the range [v1, v2] is computed, not enumerated: the
// optimized-support rule maximizes the number of tuples in the range
// subject to a minimum confidence, and the optimized-confidence rule
// maximizes confidence subject to a minimum support. Both are found in
// time linear in the number of buckets using the paper's convex-hull
// and effective-index algorithms, after an out-of-core-friendly
// randomized equi-depth bucketing pass that never sorts the database.
//
// # Two-pass architecture
//
// The paper's premise is that the database is far larger than main
// memory, making sequential scans the currency of performance. MineAll
// therefore reads the relation exactly TWICE, no matter how many
// numeric attributes it has: a fused sampling scan draws every
// attribute's Algorithm 3.1 sample and builds all bucket boundaries in
// one pass, a fused counting scan tallies per-bucket statistics for
// every (numeric, Boolean) attribute combination in a second pass, and
// the Section 4 rule optimizations then run on the in-memory counts
// across a worker pool. Targeted queries (Mine, MineConjunctive,
// MineTopK, …) instead scan only the columns they touch.
//
// The two-dimensional layer (§1.4) follows the same discipline.
// MineAll2D mines rectangle, x-monotone, and rectilinear-convex rules
// for EVERY requested attribute pair in exactly two relation scans:
// the fused sampling scan builds per-attribute grid boundaries, and
// one fused counting scan locates each tuple's bucket once per
// attribute and fills all d(d−1)/2 pair grids simultaneously —
// segmented across workers at storage-block-aligned boundaries, with
// exact (integer-count) grid merging. The O(side³) rectangle sweep and
// the region DPs then run on parallel in-memory kernels that are
// pinned rule-for-rule identical to the serial reference kernels.
// Mine2D, MineXMonotone, and MineRectilinearConvex are single-pair
// conveniences on the same engine.
//
// # Storage formats
//
// Disk relations come in three binary formats, negotiated
// automatically by OpenDisk:
//
//   - v1 (NewDiskWriter) is row-major: fixed-width tuples, one after
//     another. Simple and append-cheap, but every scan reads all 8·d
//     bytes of each tuple even when it needs one column.
//   - v2 (NewDiskWriterV2, the default for new data) is column-major:
//     tuples are grouped into block groups (64Ki rows by default) and
//     each column is stored contiguously within a group, so a scan
//     selecting k of d attributes reads ~k/d of the bytes. Scans run an
//     overlapped read-ahead pipeline — a prefetcher goroutine reads
//     block group N+1's column blocks while the caller decodes and
//     counts group N — with double-buffered pooled buffers, so memory
//     stays bounded regardless of relation size. Parallel counting
//     aligns its segment boundaries to block groups, and the sampling
//     pass stops at the last sorted sample index instead of reading the
//     tail.
//   - v3 (NewDiskWriterV3) keeps the v2 block-group layout but
//     compresses each column block independently — delta-from-minimum
//     bit packing for integer-valued numerics, a dictionary for
//     low-cardinality columns, bitmaps for Booleans, raw as the
//     fallback — and records a per-block zone map (numeric min/max,
//     Boolean true count) in the group directory. Scans pay only the
//     compressed bytes, and predicated scans consult the zone maps to
//     skip whole block groups whose blocks provably contain no
//     matching row: a filtered counting pass over a clustered
//     condition column reads a fraction of the relation without
//     decoding the skipped groups at all.
//
// Existing v1 and v2 files stay fully readable; convert between
// formats with ConvertDisk (or `optdata convert -in old.opr -out
// new.opr -format v3`) to change a file's scan cost profile. Both
// targeted queries and MineAll's sampling pass benefit from the
// selective column reads of v2 and v3; the differential tests pin that
// all formats yield rule-for-rule identical mining output. v2 remains
// the default for new data — prefer v3 when columns compress well
// (integer-valued or low-cardinality) or when workloads filter on
// clustered conditions.
//
// # Clustering & prunable layouts
//
// Zone maps only prune what the physical row order lets them prove:
// on a shuffled file every block group's min/max spans the whole value
// range and nothing is refutable, no matter how selective the filter.
// The write path can manufacture the prunable layout instead of hoping
// for it. DiskWriter.ClusterBy(attr) reorders the tuple stream by the
// chosen column before the v3 blocks are cut (a stable sort, NaNs
// last), and ConvertDiskClustered / `optdata convert -format v3
// -cluster <attr>` re-cluster an existing file. Clustering pays three
// times over:
//
//   - zone maps go from overlapping to partitioning, so a filter or
//     range predicate on the cluster column refutes every out-of-band
//     block group — the filtered scan reads the surviving bytes, not
//     the relation;
//   - sorted runs are what the v3 run-length (RLE) and
//     frame-of-reference (FOR) block encodings feed on, so the file
//     itself shrinks — every block still picks its cheapest encoding
//     (raw/delta/dict/bitmap/RLE/FOR) independently;
//   - parallel pruned scans stop inheriting the skipped work: the
//     zone-map-aware scheduler (PlanScanChunks) prices block-group
//     chunks from the directory — a provably-pruned chunk costs ~0 and
//     is settled without issuing a scan at all — and workers claim
//     chunks dynamically, so the surviving band spreads across workers
//     instead of stranding on whichever static segment covers it.
//     Partials fold in fixed chunk order, keeping every integer
//     statistic bit-identical across worker counts and steal orders.
//
// Choose the cluster column with `optdata inspect`, which reports each
// column's encoding mix, zone-map tightness, and estimated
// prunability. One caveat: the sampling pass consumes rows in storage
// order, so clustering changes sampled bucket boundaries (rules stay
// statistically equivalent); under exact domains
// (Config.ExactDomainLimit) boundaries depend only on the value set
// and mined rules are bit-identical across row orders — the
// differential tests pin this.
//
// # Sharded relations
//
// Above a single file sits the sharded backend: one LOGICAL relation
// backed by an ordered list of shard files (each a self-contained v1
// or v2 relation file, freely mixed) plus a small versioned manifest
// (conventionally *.oprs) listing them. The global row order is the
// concatenation of the shards in manifest order, so a sharded relation
// holding the same tuple stream as a single file mines rule-for-rule
// identically — the differential tests pin this, along with the
// exactly-two-scans cost of MineAll across shards.
//
// Sharding is the horizontal decomposition that breaks the
// single-file / single-spindle ceiling:
//
//   - each shard can live on its own disk, and
//     ShardedRelation.SetConcurrentScans(n) runs up to n shard
//     sub-scans at once — each with its own double-buffered read-ahead
//     pipeline — while still delivering tuples in global row order;
//   - the parallel counting engines (Config.PEs, MineAll2D) plan their
//     segments across shard boundaries: AlignedSegments snaps cuts to
//     shard and per-shard block-group boundaries, so workers never
//     split a shard's block group and never contend for one file;
//   - per-shard state (group directories, prefetch buffers, point-read
//     mappings) stays bounded no matter how large the logical relation
//     grows — the same decomposition that later extends to multi-node
//     scans.
//
// Create sharded relations with NewShardedWriter (splitting an append
// stream every RowsPerShard rows, or into a target shard count),
// `optdata -shards N`, or ConvertToSharded over an existing relation;
// open them with OpenSharded, or OpenData to sniff either backend from
// a path. When to shard: a relation that fits comfortably on one disk
// and mines in one scan pipeline gains nothing from sharding — prefer
// a single v2 file. Shard when the relation outgrows one device (or
// one file-size/backup boundary), when shards can sit on independent
// disks so concurrent sub-scans multiply sequential bandwidth, or
// when data arrives in natural batches (per day, per region) that
// should remain individually replaceable. Keep shards large — many
// block groups each, i.e. tens of MB at least — so per-shard pipeline
// startup stays negligible; choose the shard count from the hardware
// (≈ one shard, or a few, per independent disk), not from CPU count,
// which Config.PEs and Workers already cover.
//
// # Plan/execute sessions
//
// The miner runs on a plan→execute architecture. The paper's bucketed
// counts are SUFFICIENT STATISTICS: once an attribute's (or attribute
// pair's) count grid exists, the optimized rule for any threshold,
// rule kind, or region class derives from the grid alone, without
// touching the relation again. The engine therefore splits every query
// into a data plane and a query plane:
//
//  1. PLAN — each query is resolved into the statistics it needs:
//     per-attribute bucket boundaries, 1-D per-bucket count groups
//     (keyed by attribute, resolution, and presumptive conditions),
//     and 2-D pair grids. A batch's needs are deduplicated: ten
//     queries touching the same attribute plan one statistic.
//  2. EXECUTE — the statistics missing from the session cache are
//     materialized in at most TWO relation scans regardless of batch
//     size or mix: one fused sampling scan builds every missing
//     boundary set, one fused counting scan fills every missing count
//     group and pair grid (segmented across processing elements on
//     range-scanning storage). Same-shape batches take the fused
//     MultiCount path; heterogeneous batches run a batch-vectorized
//     general kernel — per-batch columnar passes over precomputed
//     effective-bucket arrays instead of per-tuple branching — pinned
//     bit-identical to its per-tuple reference. When every group in
//     the batch shares one conjunctive filter, the filter is pushed
//     into the storage layer, where v3 zone maps skip whole block
//     groups that provably contain no matching row.
//  3. EXTRACT — the Section 4 / §1.4 optimization kernels run per
//     query on the in-memory statistics, fanned out over a worker
//     pool. Pure CPU; no I/O.
//
// NewSession is the long-lived entry point for serving mining traffic:
//
//	s, err := optrule.NewSession(rel, optrule.Config{MinConfidence: 0.6})
//	answers, err := s.ExecuteBatch([]optrule.Query{
//		{Op: optrule.OpRules},                               // all 1-D rules
//		{Op: optrule.OpRules2D, Objective: "CardLoan"},      // all 2-D pairs
//		{Op: optrule.OpTopK, Numeric: "Balance", Objective: "CardLoan", K: 3},
//	})
//
// That whole heterogeneous batch costs exactly two scans. The session
// holds an LRU-bounded, size-accounted statistics cache keyed by
// (attributes, resolution, conditions): a re-query with different
// thresholds, rule kinds, or region classes — the knobs an analyst
// actually turns — is answered with ZERO scans, because thresholds
// live in the query plane. Sessions are safe for concurrent callers,
// so one session can back a serving layer; Session.CacheStats exposes
// occupancy, hit rates, and delta-merge telemetry, and SetCacheLimit
// rebounds the budget.
//
// The relation may GROW under a live session. Because the cached
// statistics are per-bucket counts, an append of Δ rows does not
// invalidate them — it extends them: Session.Append (in-memory
// relations), Session.RefreshFromStorage (sharded relations grown by
// AppendToSharded / `optdata append`), and Session.Refresh (anything
// else that grew in place) run ONE counting scan over just the
// appended tail and fold the partial statistics into every cached
// entry. The fold is integer-exact — counts, grids, and extremes
// merge in fixed order; order-sensitive float sums (the average
// operator's target sums) are stripped and recounted on next demand —
// so a refreshed session answers bit-identically to a cold rebuild
// over the grown relation with the same boundaries. Ingest is O(Δ),
// not O(n): the `optbench -exp append` experiment hard-fails if a 1%
// append costs more than 5% of a cold rebuild's counted bytes.
// Bucket boundaries are reused until the accumulated appended
// fraction exceeds the §3.4 bucket-error budget (≈0.5/√SampleFactor);
// past it the refresh re-samples the affected attributes over the
// full relation, exactly as a cold session would. Each refresh
// advances an internal cache generation, so batches racing an append
// never mix statistics from different relation snapshots.
// InvalidateCache remains for the one case appends cannot absorb: a
// relation REWRITTEN in place (rows changed or removed), where every
// cached statistic is stale and must be dropped.
//
// The one-shot functions below (MineAll, Mine, MineTopK, …) are thin
// wrappers over a throwaway session and remain rule-for-rule identical
// to their pre-session behavior (differential tests pin this across
// all storage backends).
//
// # Fault tolerance & scatter-gather execution
//
// Counting is where a mining batch spends its I/O, so that is the pass
// the engine can scatter: with Config.Scatter.Workers > 0, the batch's
// fused counting schedule is split at shard boundaries (storage-aligned
// segments on single-file relations), each slice is dispatched as one
// task to a pool of Workers, and the partial tallies are gathered and
// merged. The merge is EXACT — a scattered schedule carries only
// integer counts and extremes, never order-sensitive float sums (the
// average operator's target sums always take the serial path) — so the
// mined rules are bit-identical at every worker count, under every
// placement, and after every recovery action. The zero value of
// Config.Scatter keeps the classic executors untouched.
//
// Failures escalate through three layers, and a batch completes
// whenever the underlying files are readable:
//
//  1. RETRY — a failed or timed-out task attempt is retried with capped
//     exponential backoff, re-routed away from the worker that just
//     failed it. A stalled worker is abandoned at TaskTimeout and its
//     partial is discarded, never merged.
//  2. FALLBACK — a task that exhausts MaxAttempts is counted by the
//     coordinator itself, directly against the relation.
//  3. SURFACE — if even the direct scan fails, the error is scoped to
//     the QUERIES it starved, not the process: every resolved query in
//     the batch gets the storage error in its Answer.Err and
//     ExecuteBatch itself returns nil error. Context cancellation, by
//     contrast, is a caller decision and fails the whole batch
//     (ExecuteBatchContext). ScatterStats exposes the recovery
//     counters.
//
// The machinery is testable because faults are injectable: FaultRelation
// wraps any backend with a deterministic, seed-driven fault plan
// (FaultConfig) — scans that die before the first batch or at a chosen
// row, artificially short batches, stalls, Close errors — all injected
// at the consumer boundary so both the caller's error path and the
// backend's mid-scan teardown (prefetchers, concurrent shard sub-scans)
// are exercised. Every injected error wraps ErrInjected. The fault
// matrix tests drive every failure mode across every storage backend
// and worker count and require bit-identical rules; see examples/faults
// for a walkthrough. Relatedly, closing a disk or sharded relation
// while a scan or point read is in flight returns ErrBusy instead of
// racing the reader — Close only ever releases quiescent resources.
//
// # Enforced invariants
//
// The contracts above are not guarded by differential tests alone —
// they are mechanically enforced at the source level by optlint
// (cmd/optlint), a dependency-free go/analysis-style suite
// (internal/analysis/optlint) that CI runs over the whole module and
// fails on any finding. Each analyzer guards one invariant:
//
//   - maporder — a map range whose body appends to a slice, builds a
//     string, or writes output must sort afterwards: Go randomizes
//     map iteration, and leaked iteration order is exactly the bug
//     class the bit-identity suites exist to catch.
//   - nondet — kernel and merge packages may not read the wall clock
//     (time.Now, time.Since) or the globally seeded math/rand
//     generator; all randomness derives from the plan seed, so a run
//     is reproducible from its inputs.
//   - floatmerge — functions reachable from a parallel merge entry
//     point may not accumulate floats with +=: float addition is
//     order-dependent, so merged tallies stay integer-exact and
//     float target sums take the serial path.
//   - bytecount — raw file reads in internal/relation live only in
//     countio.go, whose helpers charge Stats.BytesRead; every other
//     read goes through them, keeping the cost model honest.
//   - atomicwrite — writers stage into an os.CreateTemp file beside
//     the destination and os.Rename it over on success, so a crash
//     mid-write can never truncate or clobber a durable file.
//   - closecheck — Close errors on write handles must be checked:
//     delayed write errors surface at Close, and dropping them can
//     commit a truncated file while reporting success.
//
// Run the suite locally, standalone or as a vet tool:
//
//	go run ./cmd/optlint ./...
//	go build -o /tmp/optlint ./cmd/optlint && go vet -vettool=/tmp/optlint ./...
//
// An intended exception is waived, on the offending line or the line
// above, with
//
//	//optlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory (a directive without one fails the build),
// and a directive that no longer suppresses anything is itself a
// finding — every waiver documents why the invariant does not apply,
// and stale waivers cannot rot into holes.
//
// # Quick start
//
//	rel, err := optrule.ReadCSVFile("customers.csv")
//	if err != nil { ... }
//	res, err := optrule.MineAll(rel, optrule.Config{
//		MinSupport:    0.10,
//		MinConfidence: 0.60,
//	})
//	for _, rule := range res.Rules {
//		fmt.Println(rule)
//	}
//
// Targeted queries mine a single attribute pair, optionally under a
// conjunctive condition (the generalized rules of the paper's §4.3):
//
//	sup, conf, err := optrule.Mine(rel, "Balance", "CardLoan", true,
//		[]optrule.Condition{{Attr: "AutoWithdraw", Value: true}},
//		optrule.Config{})
//
// Section 5's decision-support queries — "which range of checking
// balances maximizes the average savings balance?" — are available as
// MaxAverageRange and MaxSupportRange.
package optrule

import (
	"io"
	"os"

	"optrule/internal/datagen"
	"optrule/internal/miner"
	"optrule/internal/relation"
)

// Kind is the type of an attribute (Numeric or Boolean).
type Kind = relation.Kind

// Attribute kinds.
const (
	Numeric = relation.Numeric
	Boolean = relation.Boolean
)

// Attribute describes one column of a relation.
type Attribute = relation.Attribute

// Schema is an ordered list of attributes.
type Schema = relation.Schema

// Relation is a read-only table supporting streaming scans. Both the
// in-memory and the disk-backed implementations satisfy it.
type Relation = relation.Relation

// ColumnSet selects which attributes a Relation.Scan decodes, by
// global attribute index.
type ColumnSet = relation.ColumnSet

// Batch is one scan's unit of delivery: parallel column slices of Len
// rows. Callbacks must not retain a batch's slices.
type Batch = relation.Batch

// MemoryRelation is the columnar in-memory relation; build one with
// NewMemoryRelation and Append, or load one from CSV.
type MemoryRelation = relation.MemoryRelation

// DiskRelation is the disk-backed relation for data sets larger than
// main memory; open one with OpenDisk.
type DiskRelation = relation.DiskRelation

// DiskWriter streams tuples into the binary on-disk format (any
// version; see NewDiskWriter, NewDiskWriterV2, and NewDiskWriterV3).
type DiskWriter = relation.DiskWriter

// On-disk format versions (see the package documentation's Storage
// formats section).
const (
	// DiskFormatV1 is the row-major format.
	DiskFormatV1 = relation.DiskFormatV1
	// DiskFormatV2 is the column-major block-group format.
	DiskFormatV2 = relation.DiskFormatV2
	// DiskFormatV3 is the compressed block-group format with zone maps.
	DiskFormatV3 = relation.DiskFormatV3
)

// Rule is one mined optimized association rule.
type Rule = miner.Rule

// RuleKind distinguishes optimized-support from optimized-confidence
// rules.
type RuleKind = miner.RuleKind

// Rule kinds.
const (
	OptimizedSupport    = miner.OptimizedSupport
	OptimizedConfidence = miner.OptimizedConfidence
	OptimizedGain       = miner.OptimizedGain
)

// Config controls mining; the zero value uses sensible defaults
// (MinSupport 0.05, MinConfidence 0.5, 1000 buckets, sample factor 40).
type Config = miner.Config

// Condition is a primitive Boolean condition used as a presumptive
// conjunct in generalized rules.
type Condition = miner.Condition

// Result is the output of MineAll.
type Result = miner.Result

// AvgRange is an optimized range for the average operator (Section 5).
type AvgRange = miner.AvgRange

// NewMemoryRelation creates an empty in-memory relation with the given
// schema.
func NewMemoryRelation(schema Schema) (*MemoryRelation, error) {
	return relation.NewMemoryRelation(schema)
}

// ReadCSV parses a headered CSV stream into a relation using schema;
// CSV columns may appear in any order and extra columns are ignored.
func ReadCSV(r io.Reader, schema Schema) (*MemoryRelation, error) {
	return relation.ReadCSV(r, schema)
}

// ReadCSVAuto parses a headered CSV stream, inferring each column's
// kind from the first data row (floats are Numeric; yes/no/true/false
// are Boolean).
func ReadCSVAuto(r io.Reader) (*MemoryRelation, error) {
	return relation.ReadCSVAutoSchema(r)
}

// ReadCSVFile is ReadCSVAuto over a file path.
func ReadCSVFile(path string) (*MemoryRelation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadCSVAutoSchema(f)
}

// WriteCSV writes a relation with a header row; Boolean values are
// encoded as yes/no.
func WriteCSV(w io.Writer, rel Relation) error {
	return relation.WriteCSV(w, rel)
}

// OpenDisk opens a binary relation file written by NewDiskWriter or
// NewDiskWriterV2, negotiating the format version from the header.
// Scans stream through fixed-size buffers, so relations far larger
// than main memory can be mined.
func OpenDisk(path string) (*DiskRelation, error) {
	return relation.OpenDisk(path)
}

// NewDiskWriter creates a v1 (row-major) binary relation file at path.
// Prefer NewDiskWriterV2 for new data: its column-major layout makes
// selective scans proportionally cheaper.
func NewDiskWriter(path string, schema Schema) (*DiskWriter, error) {
	return relation.NewDiskWriter(path, schema)
}

// NewDiskWriterV2 creates a v2 (column-major block-group) binary
// relation file at path. groupRows is the block-group size; 0 selects
// the default (64Ki rows).
func NewDiskWriterV2(path string, schema Schema, groupRows int) (*DiskWriter, error) {
	return relation.NewDiskWriterV2(path, schema, groupRows)
}

// NewDiskWriterV3 creates a v3 (compressed block-group) binary
// relation file at path: per-block compression plus min/max zone maps
// that let predicated scans skip whole block groups. groupRows is the
// block-group size; 0 selects the default (64Ki rows).
func NewDiskWriterV3(path string, schema Schema, groupRows int) (*DiskWriter, error) {
	return relation.NewDiskWriterV3(path, schema, groupRows)
}

// ConvertDisk rewrites the relation file at src into the given format
// version (DiskFormatV1, DiskFormatV2, or DiskFormatV3) at dst, streaming batch by
// batch so relations larger than memory convert in bounded space. It
// is failure-safe: output goes to a temp file renamed over dst only on
// success, so a failed conversion never leaves a truncated dst behind.
func ConvertDisk(src, dst string, version int) error {
	return relation.ConvertDisk(src, dst, version)
}

// ConvertDiskClustered is ConvertDisk with a write-path reorder: the
// tuples are rewritten clustered by the attribute at index clusterAttr
// (stable sort, NaNs last), which is what makes v3 zone maps partition
// the value space and RLE/FOR encodings find their runs. See the
// package documentation's Clustering & prunable layouts section.
func ConvertDiskClustered(src, dst string, version, clusterAttr int) error {
	rel, err := relation.OpenDisk(src)
	if err != nil {
		return err
	}
	defer rel.Close()
	return relation.ConvertFileClustered(rel, dst, version, clusterAttr)
}

// ShardedRelation is the disk-backed relation spanning many shard
// files behind one manifest; open one with OpenSharded. See the
// package documentation's Sharded relations section.
type ShardedRelation = relation.ShardedRelation

// ShardedWriter streams tuples into a sharded relation; create one
// with NewShardedWriter.
type ShardedWriter = relation.ShardedWriter

// ShardedWriterOptions configures NewShardedWriter: the splitting
// policy (RowsPerShard, or Shards+TotalRows), shard file format, and
// v2 block-group size.
type ShardedWriterOptions = relation.ShardedWriterOptions

// DataRelation is the storage surface shared by DiskRelation and
// ShardedRelation: range scans, point reads, alignment hints, counted
// BytesRead, Close.
type DataRelation = relation.DataRelation

// OpenSharded opens a sharded relation from its manifest file, opening
// and cross-checking every shard before any row is served.
func OpenSharded(manifestPath string) (*ShardedRelation, error) {
	return relation.OpenSharded(manifestPath)
}

// OpenData opens either disk backend at path by sniffing the file's
// magic: shard manifests open as ShardedRelation, relation files as
// DiskRelation.
func OpenData(path string) (DataRelation, error) {
	return relation.OpenData(path)
}

// NewShardedWriter creates a sharded relation rooted at manifestPath
// (conventionally *.oprs); shard files are written next to it and the
// manifest itself is committed atomically on Close.
func NewShardedWriter(manifestPath string, schema Schema, opts ShardedWriterOptions) (*ShardedWriter, error) {
	return relation.NewShardedWriter(manifestPath, schema, opts)
}

// ConvertToSharded streams an open relation into a sharded relation at
// manifestPath with the given shard count and shard format version
// (0 selects v2), cleaning up everything it created on error.
func ConvertToSharded(src Relation, manifestPath string, shards, version int) error {
	return relation.ConvertToSharded(src, manifestPath, shards, version)
}

// Session is a long-lived mining handle over one relation: queries
// planned together share scans, and an LRU-bounded statistics cache
// answers repeat queries with zero scans. See the package
// documentation's Plan/execute sessions section. Safe for concurrent
// use.
type Session = miner.Session

// Query is one mining request in the session IR; the zero value of
// every optional field selects the session default.
type Query = miner.Query

// Answer is one query's result; exactly one result group is populated,
// matching the query's op.
type Answer = miner.Answer

// CacheStats reports a session cache's occupancy and traffic.
type CacheStats = miner.CacheStats

// Query operations.
const (
	// OpRules mines 1-D optimized rules; empty Numeric/Objective mean
	// "all" (the MineAll workload).
	OpRules = miner.OpRules
	// OpConjunctive mines the §4.3 conjunctive rule form.
	OpConjunctive = miner.OpConjunctive
	// OpTopK mines up to K disjoint ranked ranges.
	OpTopK = miner.OpTopK
	// OpAverage / OpSupportRange are the Section 5 average-operator
	// queries.
	OpAverage      = miner.OpAverage
	OpSupportRange = miner.OpSupportRange
	// OpRules2D mines rectangle kinds and region classes over pairs.
	OpRules2D = miner.OpRules2D
)

// NewSession validates cfg and creates a session over rel. The
// relation may grow while the session is open — Session.Append,
// Session.Refresh, and Session.RefreshFromStorage fold appended rows
// into the cached statistics in O(Δ) — but existing rows must not
// change (call Session.InvalidateCache after rewriting the relation
// in place).
func NewSession(rel Relation, cfg Config) (*Session, error) {
	return miner.NewSession(rel, cfg)
}

// DeltaStats reports what one session refresh did with appended rows:
// tail rows scanned, cache entries folded, boundary sets re-sampled
// past the bucket-error budget, and whether the cache had to be
// invalidated outright.
type DeltaStats = miner.DeltaStats

// AppendOptions configures AppendToSharded: the format version and
// rows-per-shard split of the new shard files.
type AppendOptions = relation.AppendOptions

// AppendToSharded appends every row of src to the sharded relation at
// manifestPath: new rows land in fresh shard files and the manifest is
// committed by temp+rename, so concurrent readers see either the old
// relation or the whole grown one, never a torn state. Open handles
// keep their snapshot until ShardedRelation.Reopen (or a session's
// RefreshFromStorage) picks up the growth. A schema mismatch is
// refused before any file is touched.
func AppendToSharded(manifestPath string, src Relation, opts AppendOptions) (int, error) {
	return relation.AppendToSharded(manifestPath, src, opts)
}

// ScatterConfig enables and tunes the fault-tolerant scatter-gather
// counting executor (Config.Scatter); the zero value keeps the classic
// serial/segmented executors. See the package documentation's Fault
// tolerance section.
type ScatterConfig = miner.ScatterConfig

// ScatterStats carries the scatter coordinator's recovery counters
// (tasks, retries, timeouts, fallbacks), written atomically.
type ScatterStats = miner.ScatterStats

// Worker executes scatter-gather counting tasks; the in-process
// implementation is NewLocalWorker, and ScatterConfig.NewWorker
// injects alternatives (including faulty ones, for testing).
type Worker = miner.Worker

// NewLocalWorker returns the in-process scatter-gather worker over
// rel. ref selects the reference per-tuple counting kernel.
func NewLocalWorker(rel Relation, ref bool) Worker {
	return miner.NewLocalWorker(rel, ref)
}

// FaultRelation wraps any relation with deterministic, seed-driven
// storage fault injection — the harness behind the fault-matrix tests.
type FaultRelation = relation.FaultRelation

// FaultConfig selects which scans fail and how (see FaultRelation).
type FaultConfig = relation.FaultConfig

// NewFaultRelation wraps rel with the given fault plan.
func NewFaultRelation(rel Relation, cfg FaultConfig) *FaultRelation {
	return relation.NewFaultRelation(rel, cfg)
}

// ErrInjected is the sentinel wrapped by every fault the harness
// injects; test for it with errors.Is.
var ErrInjected = relation.ErrInjected

// ErrBusy is returned by DiskRelation.Close and ShardedRelation.Close
// while scans or point reads are in flight: Close releases nothing and
// the readers finish unharmed.
var ErrBusy = relation.ErrBusy

// MineAll mines both optimized rules for every (numeric, Boolean)
// attribute combination of the relation, sorted by descending lift.
func MineAll(rel Relation, cfg Config) (*Result, error) {
	return miner.MineAll(rel, cfg)
}

// Mine computes the optimized-support and optimized-confidence rules
// for one numeric attribute and one Boolean objective
// (objective = value), optionally under a conjunction of presumptive
// Boolean conditions. Either returned rule may be nil when no range
// meets the corresponding threshold.
func Mine(rel Relation, numeric, objective string, value bool, conds []Condition, cfg Config) (supportRule, confidenceRule *Rule, err error) {
	return miner.Mine(rel, numeric, objective, value, conds, cfg)
}

// MineConjunctive mines the fully general §4.3 rule form
// (A ∈ [v1, v2]) ∧ C1 ⇒ C2 where both the presumptive condition C1
// (conditions) and the objective C2 (objectives) are conjunctions of
// primitive Boolean conditions.
func MineConjunctive(rel Relation, numeric string, objectives, conditions []Condition,
	cfg Config) (supportRule, confidenceRule *Rule, err error) {
	return miner.MineConjunctive(rel, numeric, objectives, conditions, cfg)
}

// Rule2D is a mined two-dimensional optimized rule over a rectangle of
// two numeric attributes (the paper's §1.4 extension).
type Rule2D = miner.Rule2D

// Mine2D mines the optimized rectangle rule of the given kind over two
// numeric attributes: ((A1, A2) ∈ X) ⇒ C with X an axis-parallel
// rectangle, e.g. (Age, Balance) ∈ X ⇒ (CardLoan=yes). gridSide buckets
// per axis (0 = default 64). Returns nil when no rectangle meets the
// kind's threshold.
func Mine2D(rel Relation, numericA, numericB, objective string, value bool,
	kind RuleKind, gridSide int, cfg Config) (*Rule2D, error) {
	return miner.Mine2D(rel, numericA, numericB, objective, value, kind, gridSide, cfg)
}

// Options2D selects what MineAll2D mines: the numeric attributes to
// pair up, the Boolean objective, the rectangle-rule kinds, optional
// non-rectangular region classes, and the per-axis grid side.
type Options2D = miner.Options2D

// Result2D is the output of MineAll2D: rectangle rules sorted by lift
// and region rules sorted by gain.
type Result2D = miner.Result2D

// RegionClass selects a §1.4 region family for 2-D region mining.
type RegionClass = miner.RegionClass

// Region classes for Options2D.Regions.
const (
	XMonotoneClass         = miner.XMonotoneClass
	RectilinearConvexClass = miner.RectilinearConvexClass
)

// MineAll2D mines 2-D optimized rules for every unordered pair of the
// requested numeric attributes in exactly two relation scans: one
// fused sampling scan building every attribute's grid boundaries and
// one fused counting scan filling all pair grids simultaneously, with
// the parallel region kernels running on the in-memory grids. Output
// is rule-for-rule identical to mining each pair independently.
func MineAll2D(rel Relation, opt Options2D, cfg Config) (*Result2D, error) {
	return miner.MineAll2D(rel, opt, cfg)
}

// RegionRule is a mined x-monotone region rule: a connected region of
// the (A, B) plane whose intersection with every B-slice is a single
// A-interval, so it can follow diagonal trends a rectangle cannot.
type RegionRule = miner.RegionRule

// RegionBand is one column slice of a RegionRule.
type RegionBand = miner.RegionBand

// MineXMonotone mines the x-monotone region maximizing the gain
// Σ(v − MinConfidence·u) over two numeric attributes — the most general
// region class of the paper's §1.4. Returns nil when no region achieves
// positive gain.
func MineXMonotone(rel Relation, numericA, numericB, objective string, value bool,
	gridSide int, cfg Config) (*RegionRule, error) {
	return miner.MineXMonotone(rel, numericA, numericB, objective, value, gridSide, cfg)
}

// MineRectilinearConvex mines the gain-optimal rectilinear-convex
// region (connected; every row and column intersection is one interval)
// — the middle region class of the paper's §1.4, the right shape for
// 2-D clusters. Returns nil when no region achieves positive gain.
func MineRectilinearConvex(rel Relation, numericA, numericB, objective string, value bool,
	gridSide int, cfg Config) (*RegionRule, error) {
	return miner.MineRectilinearConvex(rel, numericA, numericB, objective, value, gridSide, cfg)
}

// MineTopK mines up to k pairwise-disjoint optimized ranges for one
// (numeric, Boolean) attribute pair, ranked best first: the clusters a
// campaign planner works through after the single optimal range. kind
// selects the optimization (OptimizedConfidence or OptimizedSupport).
func MineTopK(rel Relation, numeric, objective string, value bool, kind RuleKind, k int, cfg Config) ([]Rule, error) {
	return miner.MineTopK(rel, numeric, objective, value, kind, k, cfg)
}

// MaxAverageRange finds the range of the driver attribute maximizing
// the average of the target attribute among ranges with support at
// least minSupport (Definition 5.2).
func MaxAverageRange(rel Relation, driver, target string, minSupport float64, cfg Config) (AvgRange, error) {
	return miner.MaxAverageRange(rel, driver, target, minSupport, cfg)
}

// MaxSupportRange finds the range of the driver attribute maximizing
// support among ranges whose target average is at least minAverage
// (Definition 5.3).
func MaxSupportRange(rel Relation, driver, target string, minAverage float64, cfg Config) (AvgRange, error) {
	return miner.MaxSupportRange(rel, driver, target, minAverage, cfg)
}

// SampleBankData generates the synthetic bank-customers data set used
// throughout the documentation: Balance, Age, ServiceYears (numeric)
// and CardLoan, Mortgage, AutoWithdraw (Boolean), with a planted
// association between Balance and CardLoan. Deterministic in seed.
func SampleBankData(n int, seed int64) (*MemoryRelation, error) {
	bank, err := datagen.NewBank(datagen.BankConfig{})
	if err != nil {
		return nil, err
	}
	return datagen.Materialize(bank, n, seed)
}

// SampleRetailData generates the synthetic retail-baskets data set:
// Amount, ItemCount (numeric) and five item attributes (Boolean) with
// planted correlations. Deterministic in seed.
func SampleRetailData(n int, seed int64) (*MemoryRelation, error) {
	ret, err := datagen.NewRetail(datagen.DefaultRetailConfig())
	if err != nil {
		return nil, err
	}
	return datagen.Materialize(ret, n, seed)
}
